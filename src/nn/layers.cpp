#include "nn/layers.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/check.h"

namespace fmnet::nn {

using namespace fmnet::tensor;  // NOLINT: op vocabulary

Linear::Linear(std::int64_t in_features, std::int64_t out_features,
               fmnet::Rng& rng)
    : in_features_(in_features), out_features_(out_features) {
  FMNET_CHECK_GT(in_features, 0);
  FMNET_CHECK_GT(out_features, 0);
  const float std_dev =
      std::sqrt(2.0f / static_cast<float>(in_features + out_features));
  weight_ = Tensor::randn({in_features, out_features}, rng, std_dev,
                          /*requires_grad=*/true);
  bias_ = Tensor::zeros({out_features}, /*requires_grad=*/true);
}

Tensor Linear::forward(const Tensor& x) const {
  return forward(x, Act::kNone);
}

Tensor Linear::forward(const Tensor& x, tensor::Act act) const {
  FMNET_CHECK(x.ndim() == 2 || x.ndim() == 3,
              "Linear expects 2-D or 3-D input");
  FMNET_CHECK_EQ(x.shape().back(), in_features_);
  if (precision() == Precision::kInt8 && tensor::inference_mode()) {
    return quant::linear_act_quantized(x, qweight_, bias_, act);
  }
  return linear_act(x, weight_, bias_, act);
}

std::vector<Tensor> Linear::parameters() const { return {weight_, bias_}; }

void Linear::set_precision(Precision precision) {
  if (precision == Precision::kInt8) {
    FMNET_CHECK(!training(),
                "set_precision(kInt8) on a training-mode Linear: call "
                "set_training(false) first");
    // Eager snapshot: quantisation cost is paid once here, never on the
    // serving path.
    qweight_ = quant::quantize_linear_weights(weight_.data().data(),
                                              in_features_, out_features_);
  } else {
    qweight_ = {};
  }
  Module::set_precision(precision);
}

void Linear::set_training(bool training) {
  Module::set_training(training);  // entering training resets to kFp32
  if (training) qweight_ = {};
}

LayerNorm::LayerNorm(std::int64_t features, float eps)
    : features_(features), eps_(eps) {
  FMNET_CHECK_GT(features, 0);
  gamma_ = Tensor::ones({features}, /*requires_grad=*/true);
  beta_ = Tensor::zeros({features}, /*requires_grad=*/true);
}

Tensor LayerNorm::forward(const Tensor& x) const {
  FMNET_CHECK_EQ(x.shape().back(), features_);
  return layer_norm(x, gamma_, beta_, eps_);
}

std::vector<Tensor> LayerNorm::parameters() const { return {gamma_, beta_}; }

Dropout::Dropout(float p) : p_(p) {
  FMNET_CHECK(p >= 0.0f && p < 1.0f, "dropout probability must be in [0,1)");
}

Tensor Dropout::forward(const Tensor& x, fmnet::Rng& rng) const {
  if (!training() || p_ == 0.0f) return x;
  std::vector<float> mask(x.data().size());
  const float keep_scale = 1.0f / (1.0f - p_);
  for (auto& m : mask) {
    m = rng.bernoulli(static_cast<double>(p_)) ? 0.0f : keep_scale;
  }
  return x * Tensor::from_vector(std::move(mask), x.shape());
}

PositionalEncoding::PositionalEncoding(std::int64_t max_len,
                                       std::int64_t d_model)
    : max_len_(max_len), d_model_(d_model) {
  FMNET_CHECK_GT(max_len, 0);
  FMNET_CHECK_GT(d_model, 0);
  std::vector<float> table(
      static_cast<std::size_t>(max_len * d_model));
  for (std::int64_t pos = 0; pos < max_len; ++pos) {
    for (std::int64_t i = 0; i < d_model; ++i) {
      const double angle =
          static_cast<double>(pos) /
          std::pow(10000.0, 2.0 * std::floor(static_cast<double>(i) / 2.0) /
                                static_cast<double>(d_model));
      table[static_cast<std::size_t>(pos * d_model + i)] =
          static_cast<float>((i % 2 == 0) ? std::sin(angle)
                                          : std::cos(angle));
    }
  }
  table_ = Tensor::from_vector(std::move(table), {max_len, d_model});
}

Tensor PositionalEncoding::forward(const Tensor& x) const {
  FMNET_CHECK_EQ(x.ndim(), 3u);
  const std::int64_t t = x.dim(1);
  FMNET_CHECK_LE(t, max_len_);
  FMNET_CHECK_EQ(x.dim(2), d_model_);
  const Tensor pe = tensor::slice(table_, 0, 0, t);  // [T, D], broadcasts
  return x + pe;
}

}  // namespace fmnet::nn
