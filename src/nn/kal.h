// Knowledge-Augmented Loss (paper §3.1).
//
// The transformer's EMD loss is augmented with penalty terms for the three
// switch constraints the paper selects because they are directly evaluable
// on the model output:
//
//   C1 (max):       max_{t in window} Q̂[t] <= m_max_window      (upper bound)
//   C2 (periodic):  Q̂[t] = m_len_t for sampled t                   (equality)
//   C3 (work conservation): NE = #non-empty steps <= m_out (packets sent)
//                                                              (inequality)
//
// C1 is an upper bound, not an equality: LANZ reports the slot-granularity
// intra-interval maximum, while the imputed series lives on the per-ms
// grid, so a peak reached and drained between two ms boundaries can
// legitimately exceed every per-ms value — demanding attainment would make
// the ground truth itself infeasible.
//
// Per example i we aggregate C1/C2 violations into a scalar
//   Φ_i = Σ_w relu(max_{t∈w} Q̂ - m_max_w) + Σ_{t∈samples} |Q̂_t - m_len_t|
// and inequality violations into
//   Ψ_i = Σ_w relu( Σ_{t∈w} tanh(k·relu(Q̂_t)) - m_out_w )
// (the tanh soft-counts non-empty steps, the per-window hinge strengthens
// the paper's single Ψ so a violation in one interval cannot be masked by
// slack in another).
//
// The loss follows the augmented Lagrangian method:
//   L = EMD + Σ_i [ μΦ_i² + λ_eq,i Φ_i + λ_ineq,i Ψ_i
//                   + μ·[λ_ineq,i>0 ∨ Ψ_i>0]·Ψ_i² ]
// with per-example multipliers updated after each epoch:
//   λ_eq,i   += μ·Φ_i         λ_ineq,i = max(0, λ_ineq,i + μ·Ψ_i)
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace fmnet::nn {

using tensor::Tensor;

/// Constraint data for one training example (one queue, one fine window),
/// in the same normalised units as the model output.
struct ExampleConstraints {
  /// C2: fine-step indices that were periodically sampled, and the sampled
  /// values.
  std::vector<std::int64_t> sample_idx;
  std::vector<float> sample_val;
  /// C1: per-coarse-interval maximum queue length (LANZ); an upper bound
  /// on every fine step of the window (see file comment).
  std::vector<float> window_max;
  /// C1 validity per coarse interval: empty = every LANZ report survived
  /// (the clean-telemetry case). When fault injection (src/faults) drops
  /// or delays a report, the interval's entry is 0 and its window_max is a
  /// stale carry-forward — not a bound — so kal_penalty,
  /// evaluate_constraints and CEM must not enforce C1 there. C1 becomes an
  /// *interval* constraint: binding exactly where the report survived.
  std::vector<std::uint8_t> window_max_valid;
  /// C3: per-coarse-interval packets sent by the port (SNMP), expressed in
  /// "fine steps" units (i.e. already min'd with the interval length).
  std::vector<float> port_sent;
  /// Fine steps per coarse interval.
  std::int64_t coarse_factor = 50;
  /// Sharpness k of the tanh soft non-emptiness indicator. Should be large
  /// enough that one packet's worth of normalised queue length saturates.
  float ne_tanh_scale = 200.0f;
};

/// Differentiable penalty for one example. `pred` is the [T] model output.
/// Also reports the scalar violations for the multiplier update.
struct KalTerms {
  Tensor penalty;  // scalar tensor, part of the loss
  float phi = 0.0f;
  float psi = 0.0f;
};

KalTerms kal_penalty(const Tensor& pred, const ExampleConstraints& c,
                     float lambda_eq, float lambda_ineq, float mu);

/// Per-example Lagrange multiplier state across the dataset.
class KalState {
 public:
  KalState(std::size_t num_examples, float mu);

  float lambda_eq(std::size_t i) const { return lambda_eq_.at(i); }
  float lambda_ineq(std::size_t i) const { return lambda_ineq_.at(i); }
  float mu() const { return mu_; }

  /// Augmented-Lagrangian multiplier update for example i given its current
  /// violations.
  void update(std::size_t i, float phi, float psi);

  /// Mean violation magnitudes (diagnostics).
  float mean_phi() const;
  float mean_psi() const;

 private:
  float mu_;
  std::vector<float> lambda_eq_;
  std::vector<float> lambda_ineq_;
  std::vector<float> last_phi_;
  std::vector<float> last_psi_;
};

/// Evaluates C1/C2/C3 violations of a *final* (non-differentiable) imputed
/// series, used by evaluation code; same semantics as kal_penalty but on
/// plain doubles and with a hard non-emptiness test.
struct ConstraintViolations {
  double max_violation = 0.0;       // Σ_w relu(max - m_max_w)
  double periodic_violation = 0.0;  // Σ_samples |q - m_len|
  double sent_violation = 0.0;      // Σ_w relu(NE_w - m_out_w)
  bool satisfied(double tol = 1e-6) const {
    return max_violation <= tol && periodic_violation <= tol &&
           sent_violation <= tol;
  }
};

ConstraintViolations evaluate_constraints(const std::vector<double>& pred,
                                          const ExampleConstraints& c);

}  // namespace fmnet::nn
