// Base class for trainable components (torch-style Module).
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace fmnet::nn {

using tensor::Tensor;

/// A trainable component exposing its learnable tensors. Concrete modules
/// register parameters (and submodules' parameters) via parameters().
class Module {
 public:
  virtual ~Module() = default;

  /// All learnable tensors of this module (including submodules). The
  /// returned handles alias the live parameters, so optimisers can update
  /// them in place.
  virtual std::vector<Tensor> parameters() const = 0;

  /// Switches training-time behaviour (e.g. dropout). Default: stores flag.
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// Zeroes the gradient buffers of every parameter.
  void zero_grad() const;

  /// Total number of learnable scalars.
  std::size_t num_parameters() const;

 private:
  bool training_ = true;
};

}  // namespace fmnet::nn
