// Base class for trainable components (torch-style Module).
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace fmnet::nn {

using tensor::Tensor;

/// Numeric precision of the inference forward path. kInt8 takes effect only
/// inside a tensor::InferenceGuard scope, and only on modules that have a
/// quantised kernel (Linear); everything else stays fp32 regardless.
enum class Precision { kFp32, kInt8 };

/// A trainable component exposing its learnable tensors. Concrete modules
/// register parameters (and submodules' parameters) via parameters().
class Module {
 public:
  virtual ~Module() = default;

  /// All learnable tensors of this module (including submodules). The
  /// returned handles alias the live parameters, so optimisers can update
  /// them in place.
  virtual std::vector<Tensor> parameters() const = 0;

  /// Switches training-time behaviour (e.g. dropout). Default: stores flag.
  /// Entering training also resets precision to kFp32 (see set_precision).
  virtual void set_training(bool training) {
    training_ = training;
    if (training) precision_ = Precision::kFp32;
  }
  bool training() const { return training_; }

  /// Switches the inference-path precision. Composite modules propagate to
  /// submodules; Linear additionally snapshots (kInt8) or drops (kFp32) its
  /// cached int8 weights. Requires eval mode for kInt8 — and because
  /// set_training(true) resets precision to kFp32, an int8 snapshot can
  /// never silently go stale against optimiser updates: re-call
  /// set_precision(kInt8) after training finishes.
  virtual void set_precision(Precision precision) { precision_ = precision; }
  Precision precision() const { return precision_; }

  /// Zeroes the gradient buffers of every parameter.
  void zero_grad() const;

  /// Total number of learnable scalars.
  std::size_t num_parameters() const;

 private:
  bool training_ = true;
  Precision precision_ = Precision::kFp32;
};

}  // namespace fmnet::nn
