#include "nn/attention.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/check.h"

namespace fmnet::nn {

using namespace fmnet::tensor;  // NOLINT: op vocabulary

MultiHeadSelfAttention::MultiHeadSelfAttention(std::int64_t d_model,
                                               std::int64_t num_heads,
                                               fmnet::Rng& rng)
    : d_model_(d_model),
      num_heads_(num_heads),
      head_dim_(d_model / num_heads),
      wq_(d_model, d_model, rng),
      wk_(d_model, d_model, rng),
      wv_(d_model, d_model, rng),
      wo_(d_model, d_model, rng) {
  FMNET_CHECK_GT(num_heads, 0);
  FMNET_CHECK_EQ(d_model % num_heads, 0);
}

namespace {
// [B, T, D] -> [B*H, T, Dh]: split heads and fold them into the batch so
// 3-D batched matmul covers the 4-D attention computation.
Tensor split_heads(const Tensor& x, std::int64_t heads, std::int64_t hd) {
  const std::int64_t b = x.dim(0);
  const std::int64_t t = x.dim(1);
  const Tensor r = reshape(x, {b, t, heads, hd});
  const Tensor p = transpose(r, 1, 2);  // [B, H, T, Dh]
  return reshape(p, {b * heads, t, hd});
}

// [B*H, T, Dh] -> [B, T, D]
Tensor merge_heads(const Tensor& x, std::int64_t b, std::int64_t heads,
                   std::int64_t hd) {
  const std::int64_t t = x.dim(1);
  const Tensor r = reshape(x, {b, heads, t, hd});
  const Tensor p = transpose(r, 1, 2);  // [B, T, H, Dh]
  return reshape(p, {b, t, heads * hd});
}
}  // namespace

Tensor MultiHeadSelfAttention::forward(const Tensor& x) const {
  FMNET_CHECK_EQ(x.ndim(), 3u);
  FMNET_CHECK_EQ(x.dim(2), d_model_);
  const std::int64_t b = x.dim(0);

  const Tensor q = split_heads(wq_.forward(x), num_heads_, head_dim_);
  const Tensor k = split_heads(wk_.forward(x), num_heads_, head_dim_);
  const Tensor v = split_heads(wv_.forward(x), num_heads_, head_dim_);

  const float inv_sqrt_d =
      1.0f / std::sqrt(static_cast<float>(head_dim_));
  // Scores, softmax and the value product fused into one node; the [T, T]
  // score matrix never materialises as graph state.
  const Tensor ctx = attention(q, k, v, inv_sqrt_d);  // [BH, T, Dh]
  return wo_.forward(merge_heads(ctx, b, num_heads_, head_dim_));
}

std::vector<Tensor> MultiHeadSelfAttention::parameters() const {
  std::vector<Tensor> ps;
  for (const auto* lin : {&wq_, &wk_, &wv_, &wo_}) {
    for (Tensor p : lin->parameters()) ps.push_back(std::move(p));
  }
  return ps;
}

void MultiHeadSelfAttention::set_training(bool training) {
  Module::set_training(training);
  for (auto* lin : {&wq_, &wk_, &wv_, &wo_}) lin->set_training(training);
}

void MultiHeadSelfAttention::set_precision(Precision precision) {
  Module::set_precision(precision);
  for (auto* lin : {&wq_, &wk_, &wv_, &wo_}) lin->set_precision(precision);
}

}  // namespace fmnet::nn
