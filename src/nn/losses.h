// Training losses. The paper trains the imputation transformer with EMD
// (Earth Mover's Distance) rather than MSE because MSE averages plausible
// solutions into over-smooth series and mislocates bursts (§4); both are
// provided so the ablation bench can compare them.
#pragma once

#include "tensor/tensor.h"

namespace fmnet::nn {

using tensor::Tensor;

/// Mean squared error over all elements; pred and target share a shape.
Tensor mse_loss(const Tensor& pred, const Tensor& target);

/// Mean absolute error over all elements.
Tensor mae_loss(const Tensor& pred, const Tensor& target);

/// 1-D Earth Mover's Distance along the time axis, averaged over the batch:
///   EMD(a, b) = (1/T) * sum_t | sum_{s<=t} (a_s - b_s) |
/// For non-negative series this is the Mallows/Wasserstein-1 distance
/// between their (unnormalised) mass profiles; it penalises misplaced mass
/// by how far it must travel, which is what makes it locate bursts well.
/// pred/target: [B, T] (or [T]).
Tensor emd_loss(const Tensor& pred, const Tensor& target);

}  // namespace fmnet::nn
