// Multi-head self-attention (Vaswani et al., 2017) on [B, T, D] inputs.
#pragma once

#include "nn/layers.h"
#include "nn/module.h"

namespace fmnet::nn {

/// Scaled dot-product multi-head self-attention with output projection.
/// d_model must be divisible by num_heads.
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(std::int64_t d_model, std::int64_t num_heads,
                         fmnet::Rng& rng);

  /// x: [B, T, d_model] -> [B, T, d_model]. Full (non-causal) attention:
  /// imputation may look at the whole window, unlike autoregressive
  /// decoding.
  Tensor forward(const Tensor& x) const;

  std::vector<Tensor> parameters() const override;
  void set_training(bool training) override;
  /// Propagates to the four projections. The attention block itself
  /// (scores, softmax, weighted sum) always runs fp32.
  void set_precision(Precision precision) override;

  std::int64_t num_heads() const { return num_heads_; }

 private:
  std::int64_t d_model_;
  std::int64_t num_heads_;
  std::int64_t head_dim_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
};

}  // namespace fmnet::nn
