#include "nn/losses.h"

#include "tensor/ops.h"
#include "util/check.h"

namespace fmnet::nn {

using namespace fmnet::tensor;  // NOLINT: op vocabulary

Tensor mse_loss(const Tensor& pred, const Tensor& target) {
  FMNET_CHECK(pred.shape() == target.shape(), "loss shape mismatch");
  return mean(square(pred - target));
}

Tensor mae_loss(const Tensor& pred, const Tensor& target) {
  FMNET_CHECK(pred.shape() == target.shape(), "loss shape mismatch");
  return mean(abs(pred - target));
}

Tensor emd_loss(const Tensor& pred, const Tensor& target) {
  FMNET_CHECK(pred.shape() == target.shape(), "loss shape mismatch");
  FMNET_CHECK(pred.ndim() == 1 || pred.ndim() == 2,
              "emd_loss expects [T] or [B, T]");
  const std::size_t time_axis = pred.ndim() - 1;
  const Tensor diff_cdf = cumsum(pred - target, time_axis);
  return mean(abs(diff_cdf));
}

}  // namespace fmnet::nn
