#include "nn/gru.h"

#include "tensor/ops.h"
#include "util/check.h"

namespace fmnet::nn {

using namespace fmnet::tensor;  // NOLINT: op vocabulary

GruCell::GruCell(std::int64_t input_size, std::int64_t hidden_size,
                 fmnet::Rng& rng)
    : input_size_(input_size),
      hidden_size_(hidden_size),
      xz_(input_size, hidden_size, rng),
      hz_(hidden_size, hidden_size, rng),
      xr_(input_size, hidden_size, rng),
      hr_(hidden_size, hidden_size, rng),
      xh_(input_size, hidden_size, rng),
      hh_(hidden_size, hidden_size, rng) {
  FMNET_CHECK_GT(input_size, 0);
  FMNET_CHECK_GT(hidden_size, 0);
}

Tensor GruCell::forward(const Tensor& x, const Tensor& h) const {
  FMNET_CHECK_EQ(x.ndim(), 2u);
  FMNET_CHECK_EQ(x.shape().back(), input_size_);
  FMNET_CHECK_EQ(h.shape().back(), hidden_size_);
  const Tensor z = sigmoid(xz_.forward(x) + hz_.forward(h));
  const Tensor r = sigmoid(xr_.forward(x) + hr_.forward(h));
  const Tensor cand = tanh(xh_.forward(x) + hh_.forward(r * h));
  const Tensor one_minus_z = add_scalar(neg(z), 1.0f);
  return one_minus_z * h + z * cand;
}

std::vector<Tensor> GruCell::parameters() const {
  std::vector<Tensor> ps;
  for (const Linear* lin : {&xz_, &hz_, &xr_, &hr_, &xh_, &hh_}) {
    for (Tensor p : lin->parameters()) ps.push_back(std::move(p));
  }
  return ps;
}

BiGruImputerNet::BiGruImputerNet(std::int64_t input_channels,
                                 std::int64_t hidden_size, fmnet::Rng& rng)
    : input_channels_(input_channels),
      hidden_size_(hidden_size),
      fwd_(input_channels, hidden_size, rng),
      bwd_(input_channels, hidden_size, rng),
      head_(2 * hidden_size, 1, rng) {}

Tensor BiGruImputerNet::forward(const Tensor& x) const {
  FMNET_CHECK_EQ(x.ndim(), 3u);
  FMNET_CHECK_EQ(x.dim(2), input_channels_);
  const std::int64_t b = x.dim(0);
  const std::int64_t t_len = x.dim(1);

  auto step_input = [&](std::int64_t t) {
    return reshape(tensor::slice(x, 1, t, t + 1), {b, input_channels_});
  };

  std::vector<Tensor> fwd_states(static_cast<std::size_t>(t_len));
  Tensor h = Tensor::zeros({b, hidden_size_});
  for (std::int64_t t = 0; t < t_len; ++t) {
    h = fwd_.forward(step_input(t), h);
    fwd_states[static_cast<std::size_t>(t)] = h;
  }
  std::vector<Tensor> bwd_states(static_cast<std::size_t>(t_len));
  h = Tensor::zeros({b, hidden_size_});
  for (std::int64_t t = t_len; t-- > 0;) {
    h = bwd_.forward(step_input(t), h);
    bwd_states[static_cast<std::size_t>(t)] = h;
  }

  std::vector<Tensor> outputs;
  outputs.reserve(static_cast<std::size_t>(t_len));
  for (std::int64_t t = 0; t < t_len; ++t) {
    const Tensor joint =
        cat({fwd_states[static_cast<std::size_t>(t)],
             bwd_states[static_cast<std::size_t>(t)]},
            1);                                    // [B, 2H]
    outputs.push_back(head_.forward(joint));       // [B, 1]
  }
  return reshape(cat(outputs, 1), {b, t_len});     // [B, T]
}

std::vector<Tensor> BiGruImputerNet::parameters() const {
  std::vector<Tensor> ps;
  for (const Module* m :
       {static_cast<const Module*>(&fwd_), static_cast<const Module*>(&bwd_),
        static_cast<const Module*>(&head_)}) {
    for (Tensor p : m->parameters()) ps.push_back(std::move(p));
  }
  return ps;
}

}  // namespace fmnet::nn
