#include "nn/module.h"

namespace fmnet::nn {

void Module::zero_grad() const {
  for (Tensor p : parameters()) p.zero_grad();
}

std::size_t Module::num_parameters() const {
  std::size_t n = 0;
  for (const Tensor& p : parameters()) {
    n += static_cast<std::size_t>(p.numel());
  }
  return n;
}

}  // namespace fmnet::nn
