#include "nn/optim.h"

#include <cmath>

#include "util/check.h"

namespace fmnet::nn {

Optimizer::Optimizer(std::vector<Tensor> params)
    : params_(std::move(params)) {
  for (const Tensor& p : params_) {
    FMNET_CHECK(p.defined() && p.requires_grad(),
                "optimizer parameters must require grad");
  }
}

float Optimizer::clip_grad_norm(float max_norm) {
  double sq = 0.0;
  for (Tensor& p : params_) {
    const auto& g = p.node()->grad;
    for (const float x : g) sq += static_cast<double>(x) * x;
  }
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Tensor& p : params_) {
      for (float& x : p.node()->grad) x *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.resize(params_.size());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& node = *params_[i].node();
    if (node.grad.empty()) continue;
    auto& data = node.data_mut();
    if (momentum_ != 0.0f) {
      if (velocity_[i].size() != data.size()) {
        velocity_[i].assign(data.size(), 0.0f);
      }
      for (std::size_t j = 0; j < data.size(); ++j) {
        velocity_[i][j] = momentum_ * velocity_[i][j] + node.grad[j];
        data[j] -= lr_ * velocity_[i][j];
      }
    } else {
      for (std::size_t j = 0; j < data.size(); ++j) {
        data[j] -= lr_ * node.grad[j];
      }
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
}

void Adam::step() {
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& node = *params_[i].node();
    if (node.grad.empty()) continue;
    auto& data = node.data_mut();
    if (m_[i].size() != data.size()) {
      m_[i].assign(data.size(), 0.0f);
      v_[i].assign(data.size(), 0.0f);
    }
    for (std::size_t j = 0; j < data.size(); ++j) {
      const float g = node.grad[j];
      m_[i][j] = beta1_ * m_[i][j] + (1.0f - beta1_) * g;
      v_[i][j] = beta2_ * v_[i][j] + (1.0f - beta2_) * g * g;
      const float mhat = m_[i][j] / bias1;
      const float vhat = v_[i][j] / bias2;
      float update = lr_ * mhat / (std::sqrt(vhat) + eps_);
      if (weight_decay_ > 0.0f) {
        update += lr_ * weight_decay_ * data[j];
      }
      data[j] -= update;
    }
  }
}

}  // namespace fmnet::nn
