#include "nn/kal.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"
#include "util/check.h"
#include "util/stats.h"

namespace fmnet::nn {

using namespace fmnet::tensor;  // NOLINT: op vocabulary

KalTerms kal_penalty(const Tensor& pred, const ExampleConstraints& c,
                     float lambda_eq, float lambda_ineq, float mu) {
  // The penalty exists to be differentiated; built under an InferenceGuard
  // its graph would silently be discarded and the multipliers would train
  // against nothing. Fail loudly instead.
  FMNET_CHECK(!tensor::inference_mode(),
              "kal_penalty inside an InferenceGuard scope: the KAL terms "
              "must build an autograd graph");
  FMNET_CHECK_EQ(pred.ndim(), 1u);
  const std::int64_t t_len = pred.dim(0);
  FMNET_CHECK_GT(c.coarse_factor, 0);
  FMNET_CHECK_EQ(t_len % c.coarse_factor, 0);
  const std::int64_t windows = t_len / c.coarse_factor;
  FMNET_CHECK_EQ(static_cast<std::int64_t>(c.window_max.size()), windows);
  FMNET_CHECK_EQ(static_cast<std::int64_t>(c.port_sent.size()), windows);
  FMNET_CHECK_EQ(c.sample_idx.size(), c.sample_val.size());
  if (!c.window_max_valid.empty()) {
    FMNET_CHECK_EQ(static_cast<std::int64_t>(c.window_max_valid.size()),
                   windows);
  }

  // Φ: C1 per-window max (upper bound — only exceeding the LANZ max is a
  // violation, see kal.h; intervals whose LANZ report was lost carry no
  // bound and are exempt) and C2 sampled points (equality).
  Tensor phi = Tensor::scalar(0.0f);
  for (std::int64_t w = 0; w < windows; ++w) {
    if (!c.window_max_valid.empty() &&
        c.window_max_valid[static_cast<std::size_t>(w)] == 0) {
      continue;
    }
    const Tensor win =
        tensor::slice(pred, 0, w * c.coarse_factor, (w + 1) * c.coarse_factor);
    const Tensor wmax = max_all(win);
    phi = phi + relu(add_scalar(wmax, -c.window_max[static_cast<std::size_t>(
                                          w)]));
  }
  for (std::size_t s = 0; s < c.sample_idx.size(); ++s) {
    const std::int64_t idx = c.sample_idx[s];
    FMNET_CHECK(idx >= 0 && idx < t_len, "sample index out of range");
    const Tensor at = tensor::slice(pred, 0, idx, idx + 1);
    phi = phi + sum(abs(add_scalar(at, -c.sample_val[s])));
  }

  // Ψ: per-window hinge of (soft non-empty count − packets sent).
  Tensor psi = Tensor::scalar(0.0f);
  for (std::int64_t w = 0; w < windows; ++w) {
    const Tensor win =
        tensor::slice(pred, 0, w * c.coarse_factor, (w + 1) * c.coarse_factor);
    const Tensor soft_ne =
        sum(tanh(mul_scalar(relu(win), c.ne_tanh_scale)));
    psi = psi +
          relu(add_scalar(soft_ne,
                          -c.port_sent[static_cast<std::size_t>(w)]));
  }

  KalTerms terms;
  terms.phi = phi.item();
  terms.psi = psi.item();
  const bool active = lambda_ineq > 0.0f || terms.psi > 0.0f;
  Tensor penalty = mul_scalar(square(phi), mu) + mul_scalar(phi, lambda_eq) +
                   mul_scalar(psi, lambda_ineq);
  if (active) penalty = penalty + mul_scalar(square(psi), mu);
  terms.penalty = penalty;
  return terms;
}

KalState::KalState(std::size_t num_examples, float mu)
    : mu_(mu),
      lambda_eq_(num_examples, 0.0f),
      lambda_ineq_(num_examples, 0.0f),
      last_phi_(num_examples, 0.0f),
      last_psi_(num_examples, 0.0f) {
  FMNET_CHECK_GT(mu, 0.0f);
  FMNET_CHECK_GT(num_examples, 0u);
}

void KalState::update(std::size_t i, float phi, float psi) {
  FMNET_CHECK_LT(i, lambda_eq_.size());
  lambda_eq_[i] += mu_ * phi;
  lambda_ineq_[i] = std::max(0.0f, lambda_ineq_[i] + mu_ * psi);
  last_phi_[i] = phi;
  last_psi_[i] = psi;
}

float KalState::mean_phi() const {
  double acc = 0.0;
  for (const float x : last_phi_) acc += x;
  return static_cast<float>(acc / static_cast<double>(last_phi_.size()));
}

float KalState::mean_psi() const {
  double acc = 0.0;
  for (const float x : last_psi_) acc += x;
  return static_cast<float>(acc / static_cast<double>(last_psi_.size()));
}

ConstraintViolations evaluate_constraints(const std::vector<double>& pred,
                                          const ExampleConstraints& c) {
  ConstraintViolations v;
  const auto t_len = static_cast<std::int64_t>(pred.size());
  FMNET_CHECK_GT(c.coarse_factor, 0);
  FMNET_CHECK_EQ(t_len % c.coarse_factor, 0);
  const std::int64_t windows = t_len / c.coarse_factor;
  FMNET_CHECK_EQ(static_cast<std::int64_t>(c.window_max.size()), windows);
  FMNET_CHECK_EQ(static_cast<std::int64_t>(c.port_sent.size()), windows);

  for (std::int64_t w = 0; w < windows; ++w) {
    double wmax = 0.0;
    std::int64_t ne = 0;
    for (std::int64_t t = w * c.coarse_factor; t < (w + 1) * c.coarse_factor;
         ++t) {
      const double q = pred[static_cast<std::size_t>(t)];
      wmax = std::max(wmax, q);
      if (q > 0.0) ++ne;
    }
    const bool c1_valid =
        c.window_max_valid.empty() ||
        c.window_max_valid[static_cast<std::size_t>(w)] != 0;
    if (c1_valid) {
      v.max_violation += std::max(
          0.0, wmax - c.window_max[static_cast<std::size_t>(w)]);
    }
    v.sent_violation += std::max(
        0.0, static_cast<double>(ne) -
                 static_cast<double>(c.port_sent[static_cast<std::size_t>(w)]));
  }
  for (std::size_t s = 0; s < c.sample_idx.size(); ++s) {
    v.periodic_violation +=
        std::abs(pred[static_cast<std::size_t>(c.sample_idx[s])] -
                 static_cast<double>(c.sample_val[s]));
  }
  return v;
}

}  // namespace fmnet::nn
