// First-order optimisers over Module parameters.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace fmnet::nn {

using tensor::Tensor;

/// Common optimiser interface: call backward() on the loss, then step(),
/// then zero_grad() on the module.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params);
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently stored on the
  /// parameters. Parameters whose grad buffer is empty are skipped.
  virtual void step() = 0;

  /// Clips the global L2 norm of all gradients to `max_norm`; returns the
  /// pre-clip norm.
  float clip_grad_norm(float max_norm);

 protected:
  std::vector<Tensor> params_;
};

/// Stochastic gradient descent with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f);
  void step() override;

 private:
  float lr_;
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba) with optional decoupled weight decay (AdamW when
/// weight_decay > 0).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  std::int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace fmnet::nn
