#include "fabric/fabric.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <utility>

#include "obs/metrics.h"
#include "obs/span.h"
#include "traffic/sources.h"
#include "util/check.h"
#include "util/rng.h"

namespace fmnet::fabric {

namespace {

// Reserved derive_stream_seed stream for the ECMP hash family. Per-switch
// traffic streams use stream == switch index, so any constant far above a
// plausible switch count keeps the families independent.
constexpr std::uint64_t kEcmpStream = 0x4d43'4550'4d43'4550ull;

// Where a queued packet goes when its switch transmits it: the cable's far
// end (next_sw, and the Arrival.dst_port to enqueue there), plus at most
// one further hop (fwd_sw >= 0 only for leaf-uplink entries, whose far end
// — the spine — forwards once more to the destination leaf).
struct ShadowDesc {
  std::int32_t next_sw = -1;  // -1: terminal, packet exits at this switch
  std::int32_t next_port = 0;
  std::int32_t fwd_sw = -1;
  std::int32_t fwd_port = 0;
};

// One packet crossing a cable: the Arrival to apply at the far end, plus
// the remaining hop (if any) to seed the far end's shadow FIFO.
struct LinkArrival {
  switchsim::Arrival a;
  std::int32_t fwd_sw = -1;
  std::int32_t fwd_port = 0;
};

// A transmit recorded during a chunk, delivered at the same offset of the
// next chunk (the chunk length *is* the link delay).
struct OutPacket {
  std::int32_t off = 0;
  std::int32_t cls = 0;
  ShadowDesc d;
};

struct SwitchState {
  explicit SwitchState(switchsim::SwitchConfig cfg)
      : sw(std::move(cfg)), recorder(sw) {}

  bool leaf = false;
  std::int64_t index = 0;
  switchsim::OutputQueuedSwitch sw;
  switchsim::GroundTruthRecorder recorder;
  std::unique_ptr<traffic::TrafficSource> source;  // leaves only
  std::vector<std::deque<ShadowDesc>> shadow;      // per flat (port, class)
  std::vector<std::vector<LinkArrival>> inbox_cur;   // [slot offset]
  std::vector<std::vector<LinkArrival>> inbox_next;  // filled by delivery
  std::vector<OutPacket> outbox;
  // per-slot scratch (lives here so capacity persists across slots)
  std::vector<switchsim::Arrival> arrivals;
  std::vector<ShadowDesc> meta;  // parallel to arrivals
  std::vector<switchsim::Arrival> host_buf;
};

}  // namespace

bool is_leaf(const FabricConfig& f, std::int64_t index) {
  FMNET_CHECK(index >= 0 && index < f.num_switches(),
              "switch index out of range");
  return index < f.leaves;
}

std::string switch_name(const FabricConfig& f, std::int64_t index) {
  return is_leaf(f, index) ? "leaf" + std::to_string(index)
                           : "spine" + std::to_string(index - f.leaves);
}

std::int32_t leaf_num_ports(const FabricConfig& f) {
  return static_cast<std::int32_t>(f.hosts_per_leaf +
                                   f.spines * f.link_capacity);
}

std::int32_t spine_num_ports(const FabricConfig& f) {
  return static_cast<std::int32_t>(f.leaves * f.link_capacity);
}

std::int32_t leaf_uplink_port(const FabricConfig& f, std::int64_t spine,
                              std::int64_t cable) {
  FMNET_CHECK(spine >= 0 && spine < f.spines, "spine out of range");
  FMNET_CHECK(cable >= 0 && cable < f.link_capacity, "cable out of range");
  return static_cast<std::int32_t>(f.hosts_per_leaf +
                                   spine * f.link_capacity + cable);
}

std::int32_t spine_downlink_port(const FabricConfig& f, std::int64_t leaf,
                                 std::int64_t cable) {
  FMNET_CHECK(leaf >= 0 && leaf < f.leaves, "leaf out of range");
  FMNET_CHECK(cable >= 0 && cable < f.link_capacity, "cable out of range");
  return static_cast<std::int32_t>(leaf * f.link_capacity + cable);
}

std::int32_t switch_num_ports(const FabricConfig& f, std::int64_t index) {
  return is_leaf(f, index) ? leaf_num_ports(f) : spine_num_ports(f);
}

std::uint64_t ecmp_seed_from(std::uint64_t campaign_seed) {
  return derive_stream_seed(campaign_seed, kEcmpStream);
}

EcmpChoice ecmp_route(const FabricConfig& f, std::uint64_t ecmp_seed,
                      std::int64_t src_leaf, std::int64_t dst_host,
                      std::int32_t queue_class) {
  std::uint64_t h = derive_stream_seed(
      derive_stream_seed(
          derive_stream_seed(ecmp_seed, static_cast<std::uint64_t>(src_leaf)),
          static_cast<std::uint64_t>(dst_host)),
      static_cast<std::uint64_t>(queue_class));
  EcmpChoice r;
  r.spine = static_cast<std::int64_t>(h % static_cast<std::uint64_t>(f.spines));
  h /= static_cast<std::uint64_t>(f.spines);
  r.up_cable =
      static_cast<std::int64_t>(h % static_cast<std::uint64_t>(f.link_capacity));
  h /= static_cast<std::uint64_t>(f.link_capacity);
  r.down_cable =
      static_cast<std::int64_t>(h % static_cast<std::uint64_t>(f.link_capacity));
  return r;
}

std::vector<SwitchGroundTruth> simulate_fabric(const FabricParams& p,
                                               util::ThreadPool* pool) {
  const FabricConfig& f = p.topo;
  FMNET_CHECK(f.enabled(), "fabric requires leaves > 0 and spines > 0");
  FMNET_CHECK_GT(f.hosts_per_leaf, 0);
  FMNET_CHECK_GT(f.link_capacity, 0);
  FMNET_CHECK_GT(f.link_delay_ms, 0);
  FMNET_CHECK_GT(p.buffer_size, 0);
  FMNET_CHECK_GT(p.slots_per_ms, 0);
  FMNET_CHECK_GT(p.total_ms, 0);

  obs::ScopedSpan span("fabric.simulate");
  util::ThreadPool& tp = util::ThreadPool::resolve(pool);

  const std::int64_t n = f.num_switches();
  const std::int64_t chunk =
      f.link_delay_ms * static_cast<std::int64_t>(p.slots_per_ms);
  const std::int64_t total_slots =
      p.total_ms * static_cast<std::int64_t>(p.slots_per_ms);
  const std::uint64_t ecmp_seed = ecmp_seed_from(p.seed);
  constexpr std::int32_t kClasses = 2;  // the paper's two traffic classes

  std::vector<std::unique_ptr<SwitchState>> states;
  states.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    switchsim::SwitchConfig cfg;
    cfg.num_ports = switch_num_ports(f, i);
    cfg.queues_per_port = kClasses;
    cfg.buffer_size = p.buffer_size;
    cfg.alpha = {1.0, 0.5};
    cfg.scheduler = p.scheduler;
    cfg.slots_per_ms = p.slots_per_ms;
    auto st = std::make_unique<SwitchState>(std::move(cfg));
    st->leaf = is_leaf(f, i);
    st->index = i;
    if (st->leaf) {
      st->source = traffic::make_scaled_paper_workload(
          static_cast<std::int32_t>(f.total_hosts()),
          static_cast<std::int32_t>(f.hosts_per_leaf),
          derive_stream_seed(p.seed, static_cast<std::uint64_t>(i)));
    }
    st->shadow.assign(
        static_cast<std::size_t>(st->sw.config().num_ports * kClasses), {});
    st->inbox_cur.assign(static_cast<std::size_t>(chunk), {});
    st->inbox_next.assign(static_cast<std::size_t>(chunk), {});
    states.push_back(std::move(st));
  }

  obs::Registry::global().counter("fabric.switches").add(n);
  obs::Counter& chunks_counter = obs::Registry::global().counter("fabric.chunks");
  obs::Counter& link_counter =
      obs::Registry::global().counter("fabric.link.delivered");

  // One switch, one chunk: consume the inbox, generate host traffic, step,
  // maintain shadow FIFOs, append transmits to the outbox. Touches only
  // this switch's state — the parallel_for below is free of sharing.
  const auto run_chunk = [&](std::int64_t i, std::int64_t t0,
                             std::int64_t len) {
    SwitchState& st = *states[static_cast<std::size_t>(i)];
    st.outbox.clear();
    const std::int32_t num_ports = st.sw.config().num_ports;
    const std::int32_t first_fwd =
        st.leaf ? static_cast<std::int32_t>(f.hosts_per_leaf) : 0;
    for (std::int64_t off = 0; off < len; ++off) {
      st.arrivals.clear();
      st.meta.clear();
      // Link arrivals first (in fixed delivery order), then host arrivals.
      for (const LinkArrival& la : st.inbox_cur[static_cast<std::size_t>(off)]) {
        st.arrivals.push_back(la.a);
        ShadowDesc d;
        if (la.fwd_sw >= 0) {
          d.next_sw = la.fwd_sw;
          d.next_port = la.fwd_port;
        }
        st.meta.push_back(d);
      }
      if (st.leaf) {
        st.host_buf.clear();
        st.source->generate(t0 + off, st.host_buf);
        for (const auto& ha : st.host_buf) {
          const std::int64_t dst = ha.dst_port;  // global host id
          const std::int64_t dst_leaf = dst / f.hosts_per_leaf;
          const std::int32_t dst_local =
              static_cast<std::int32_t>(dst % f.hosts_per_leaf);
          if (dst_leaf == st.index) {
            st.arrivals.push_back({dst_local, ha.queue_class});
            st.meta.push_back({});
          } else {
            const EcmpChoice r =
                ecmp_route(f, ecmp_seed, st.index, dst, ha.queue_class);
            st.arrivals.push_back(
                {leaf_uplink_port(f, r.spine, r.up_cable), ha.queue_class});
            st.meta.push_back(
                {static_cast<std::int32_t>(f.leaves + r.spine),
                 spine_downlink_port(f, dst_leaf, r.down_cable),
                 static_cast<std::int32_t>(dst_leaf), dst_local});
          }
        }
      }
      st.sw.step(st.arrivals);
      const auto& adm = st.sw.last_admitted();
      for (std::size_t ai = 0; ai < st.arrivals.size(); ++ai) {
        if (adm[ai] != 0 && st.meta[ai].next_sw >= 0) {
          const auto q = static_cast<std::size_t>(
              st.arrivals[ai].dst_port * kClasses + st.arrivals[ai].queue_class);
          st.shadow[q].push_back(st.meta[ai]);
        }
      }
      st.recorder.on_slot();
      for (std::int32_t pt = first_fwd; pt < num_ports; ++pt) {
        const std::int32_t c = st.sw.last_tx_class(pt);
        if (c < 0) continue;
        auto& q = st.shadow[static_cast<std::size_t>(pt * kClasses + c)];
        FMNET_CHECK(!q.empty(), "fabric shadow FIFO underrun");
        st.outbox.push_back({static_cast<std::int32_t>(off), c, q.front()});
        q.pop_front();
      }
    }
  };

  for (std::int64_t t0 = 0; t0 < total_slots; t0 += chunk) {
    const std::int64_t len = std::min(chunk, total_slots - t0);
    tp.parallel_for(0, n,
                    [&](std::int64_t i) { run_chunk(i, t0, len); });
    // Barrier reached: deliver every outbox in fixed switch order so each
    // destination slot sees link arrivals in a thread-count-independent
    // order. Transmits of the final (possibly partial) chunk land beyond
    // the horizon and are dropped with the in-flight packets.
    std::int64_t delivered = 0;
    for (const auto& src : states) {
      for (const OutPacket& op : src->outbox) {
        auto& dst = *states[static_cast<std::size_t>(op.d.next_sw)];
        dst.inbox_next[static_cast<std::size_t>(op.off)].push_back(
            {{op.d.next_port, op.cls}, op.d.fwd_sw, op.d.fwd_port});
        ++delivered;
      }
    }
    for (const auto& st : states) {
      std::swap(st->inbox_cur, st->inbox_next);
      for (auto& v : st->inbox_next) v.clear();
    }
    chunks_counter.add(1);
    link_counter.add(delivered);
  }

  std::vector<SwitchGroundTruth> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    SwitchGroundTruth g;
    g.name = switch_name(f, i);
    g.config = states[static_cast<std::size_t>(i)]->sw.config();
    g.gt = states[static_cast<std::size_t>(i)]->recorder.finish();
    out.push_back(std::move(g));
  }
  return out;
}

}  // namespace fmnet::fabric
