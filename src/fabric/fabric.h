// Leaf–spine fabric: N coupled OutputQueuedSwitch instances under one
// scenario, so cross-switch congestion (a leaf's uplink backlog spilling
// into a spine's downlink queue, remote incast landing on a victim leaf)
// appears in the ground truth — the fleet-scale setting the paper's
// imputation vision targets, not a single isolated switch.
//
// Topology. `leaves` leaf switches, each with `hosts_per_leaf` host-facing
// ports, fully meshed to `spines` spine switches by `link_capacity`
// parallel cables per (leaf, spine) pair. A cable is full duplex: the
// leaf's uplink port transmits toward the spine, and the spine's matching
// downlink port transmits back toward the leaf. A packet from a host on
// leaf A to a host on leaf B takes A's uplink queue, then (after the link
// delay) the spine's downlink queue, then (after the delay again) B's
// host-facing queue.
//
// ECMP-ish flow placement. The (spine, cable) a flow rides is a pure hash
// of (source leaf, destination host, traffic class) over a seed stream
// derived from the campaign seed — flow-coherent (every packet of a
// leaf→host class takes one path), load-spreading, and bit-reproducible.
//
// Coupled simulation without lock-step. The only inter-switch interaction
// is delayed packet hand-off, so time is advanced in chunks of exactly the
// link delay: within a chunk every switch steps independently (parallel
// over util::ThreadPool — any packet transmitted in chunk k arrives in
// chunk k+1 by construction), then outboxes are delivered to inboxes in
// fixed switch order. Per-switch state is touched only by its own task, so
// the result is bit-identical at any lane count.
//
// The switch model is a counting model (queues hold lengths, not packet
// identities), so the fabric layer keeps one shadow FIFO per forwarding
// (port, class): descriptors are pushed in admission order
// (OutputQueuedSwitch::last_admitted) and popped at transmit time
// (last_tx_class) — exact, because the modelled queues are FIFO per
// (port, class).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "switchsim/recorder.h"
#include "switchsim/switch.h"
#include "util/thread_pool.h"

namespace fmnet::fabric {

/// Static fabric topology, as described by the `fabric.*` scenario keys.
/// Default-constructed (leaves == spines == 0) means "no fabric": the
/// scenario runs the classic single-switch pipeline.
struct FabricConfig {
  std::int64_t leaves = 0;
  std::int64_t spines = 0;
  /// Host-facing ports per leaf.
  std::int64_t hosts_per_leaf = 4;
  /// Parallel cables per (leaf, spine) pair.
  std::int64_t link_capacity = 1;
  /// One-way propagation delay of every cable, in milliseconds (also the
  /// simulation chunk size).
  std::int64_t link_delay_ms = 1;
  /// Fault-injection scoping: -1 applies the scenario's faults.* block to
  /// every switch (each with its own derived fault seed); k >= 0 degrades
  /// only switch k's telemetry. Affects datasets, never the ground truth.
  std::int64_t faults_switch = -1;

  bool enabled() const { return leaves > 0 && spines > 0; }
  std::int64_t num_switches() const { return leaves + spines; }
  std::int64_t total_hosts() const { return leaves * hosts_per_leaf; }
};

/// Switch indexing: leaves first (0..leaves-1), then spines.
bool is_leaf(const FabricConfig& f, std::int64_t index);

/// "leaf<k>" / "spine<k>" — stable names used in cache keys and output.
std::string switch_name(const FabricConfig& f, std::int64_t index);

/// Leaf port layout: [0, hosts_per_leaf) face hosts; uplink cable c to
/// spine s is port hosts_per_leaf + s*link_capacity + c.
std::int32_t leaf_num_ports(const FabricConfig& f);
std::int32_t leaf_uplink_port(const FabricConfig& f, std::int64_t spine,
                              std::int64_t cable);

/// Spine port layout: downlink cable c to leaf l is port
/// l*link_capacity + c.
std::int32_t spine_num_ports(const FabricConfig& f);
std::int32_t spine_downlink_port(const FabricConfig& f, std::int64_t leaf,
                                 std::int64_t cable);

std::int32_t switch_num_ports(const FabricConfig& f, std::int64_t index);

/// ECMP path of one (source leaf, destination host, class) flow.
struct EcmpChoice {
  std::int64_t spine = 0;
  std::int64_t up_cable = 0;    // cable src_leaf -> spine
  std::int64_t down_cable = 0;  // cable spine -> dst_leaf
};

/// Hash-based flow placement over a deterministic seed stream: a pure
/// function of (ecmp_seed, src_leaf, dst_host, queue_class), uniform-ish
/// across spines and cables. `ecmp_seed` comes from
/// ecmp_seed_from(campaign seed).
EcmpChoice ecmp_route(const FabricConfig& f, std::uint64_t ecmp_seed,
                      std::int64_t src_leaf, std::int64_t dst_host,
                      std::int32_t queue_class);

/// The fabric's ECMP seed stream, derived from the campaign seed at a
/// reserved stream index that cannot collide with per-switch traffic
/// streams (which use stream == switch index).
std::uint64_t ecmp_seed_from(std::uint64_t campaign_seed);

/// Everything simulate_fabric needs: topology plus the per-switch
/// simulation parameters shared by all switches.
struct FabricParams {
  FabricConfig topo;
  std::int64_t buffer_size = 600;
  std::int32_t slots_per_ms = 90;
  std::int64_t total_ms = 10'000;
  std::uint64_t seed = 42;
  switchsim::SchedulerType scheduler = switchsim::SchedulerType::kRoundRobin;
};

/// Ground truth of one switch of a fabric run.
struct SwitchGroundTruth {
  std::string name;
  switchsim::SwitchConfig config;
  switchsim::GroundTruth gt;
};

/// Simulates the coupled fabric and returns per-switch ground truth in
/// switch-index order (leaves first). Each leaf's hosts emit the paper
/// workload over the *global* host space (scaled to per-leaf intensity,
/// seeded derive_stream_seed(seed, leaf_index)); remote packets traverse
/// uplink → spine → destination leaf with `link_delay_ms` per hop.
/// Parallel over `pool` (null = global pool); bit-identical at any lane
/// count.
std::vector<SwitchGroundTruth> simulate_fabric(const FabricParams& p,
                                               util::ThreadPool* pool =
                                                   nullptr);

}  // namespace fmnet::fabric
