// Telemetry fault injection: deterministic, seed-streamed degradation of
// the coarse telemetry between simulate and prepare.
//
// The paper assumes an operator who can only see coarse telemetry; real
// collection of that telemetry is itself lossy. This subsystem models the
// common failure modes of the three tools:
//
//   * periodic sampling — polls silently missed (stale carry-forward);
//   * LANZ              — reports dropped in transit, or delivered one
//                         interval late (the late maximum merges into the
//                         next interval's report);
//   * SNMP              — polling-boundary jitter (counts slip between
//                         adjacent intervals) and fixed-width counter wrap
//                         (readings are diffs of a cumulative counter mod
//                         2^bits, so a wrap shows up as a negative spike);
//   * transport         — records duplicated (a stale copy overwrites the
//                         next report) or reordered (adjacent swaps);
//   * measurement       — Gaussian noise and quantisation on the queue
//                         length channels.
//
// Each fault is a composable Injector. Injection is canonical: the
// pipeline is always applied in the fixed InjectorKind order regardless of
// construction order, and every (injector, series) pair draws from its own
// derive_stream_seed stream, so the faulted telemetry is a pure function
// of (clean telemetry, FaultConfig) at any thread count.
//
// Downstream semantics: injectors that *lose* a report record it in
// telemetry::TelemetryQuality, turning C1/C2 into interval constraints
// (kal.h / cem.h honour ExampleConstraints::window_max_valid, and dropped
// periodic samples simply emit no C2 equality). Injectors that *corrupt* a
// value in a plausible way (duplicate, reorder, noise, quantise) leave the
// masks untouched — the operator cannot detect those, which is exactly the
// robustness hazard the sweep in core/robustness.h measures. Counter wrap
// is recoverable: wrap_correct() restores non-negative per-interval counts
// (exactly, whenever true per-interval counts stay below 2^bits), which is
// how C3 consumes wrapped SNMP counters.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "telemetry/monitors.h"
#include "util/thread_pool.h"

namespace fmnet::faults {

/// Declarative fault configuration, one field per scenario `faults.*` key.
/// All rates are per-report probabilities in [0,1]; `severity` scales every
/// rate and the noise magnitude (clamped back into [0,1]), so a severity
/// sweep moves one knob. severity == 0 disables everything.
struct FaultConfig {
  /// Root of every injector's seed streams (independent of campaign.seed).
  std::uint64_t seed = 0;
  /// Global scale applied to all rates and to `noise`; 0 = clean.
  double severity = 1.0;
  /// P(periodic sample missed) per (queue, interval); missed samples hold
  /// the last surviving value and emit no C2 constraint.
  double periodic_drop = 0.0;
  /// P(LANZ report dropped) per (queue, interval); dropped reports hold
  /// the last surviving value and invalidate the interval's C1 bound.
  double lanz_drop = 0.0;
  /// P(LANZ report one interval late): the origin interval shows a stale
  /// value (C1 invalidated), the late max merges into the next interval's
  /// report (which stays a sound upper bound).
  double lanz_late = 0.0;
  /// P(SNMP poll boundary slips) per (port, boundary): a fraction of the
  /// next interval's counts is attributed to the current one, jointly for
  /// sent/dropped/received.
  double snmp_jitter = 0.0;
  /// SNMP counter width in bits (1..32); readings become diffs of a
  /// cumulative counter mod 2^bits. 0 = off. Structural (not severity
  /// scaled) but disabled at severity 0.
  std::int64_t snmp_wrap_bits = 0;
  /// P(record overwritten by a duplicate of its predecessor) per report.
  double duplicate = 0.0;
  /// P(adjacent records swapped) per report boundary.
  double reorder = 0.0;
  /// Gaussian noise stddev (packets) on periodic/LANZ values.
  double noise = 0.0;
  /// Quantisation step (packets) for periodic/LANZ values; <= 1 = off.
  /// Structural (not severity scaled) but disabled at severity 0.
  std::int64_t quantize = 0;

  /// True when any injector would actually perturb telemetry. Scenario
  /// canonicalisation emits `faults.*` keys (and the engine switches to
  /// the masked dataset format) only when this holds, so a clean scenario
  /// is byte-identical to one that never mentions faults.
  bool enabled() const;

  /// The same faults at a different severity (for sweeps).
  FaultConfig at_severity(double s) const {
    FaultConfig c = *this;
    c.severity = s;
    return c;
  }

  /// severity-scaled rate/magnitude accessors (rates clamped to [0,1]).
  double rate(double r) const;
  double noise_stddev() const;
};

/// Canonical application order (transport faults, then measurement faults,
/// then value faults). Also each injector's seed-stream discriminator.
enum class InjectorKind : std::uint32_t {
  kReorder = 0,
  kDuplicate = 1,
  kPeriodicDrop = 2,
  kLanzDrop = 3,
  kLanzLate = 4,
  kSnmpJitter = 5,
  kSnmpWrap = 6,
  kNoise = 7,
  kQuantize = 8,
};

const char* injector_name(InjectorKind kind);

/// Telemetry after injection: the perturbed coarse series plus the
/// validity masks. `quality` is non-empty iff at least one injector ran.
struct FaultedTelemetry {
  telemetry::CoarseTelemetry coarse;
  telemetry::TelemetryQuality quality;
};

/// One composable fault. Implementations derive all randomness from
/// streams rooted at (seed, kind, series index), so the output is
/// independent of both the thread count and which other injectors run.
class Injector {
 public:
  explicit Injector(InjectorKind kind) : kind_(kind) {}
  virtual ~Injector() = default;

  InjectorKind kind() const { return kind_; }
  const char* name() const { return injector_name(kind_); }

  virtual void apply(FaultedTelemetry& t, std::uint64_t seed,
                     util::ThreadPool& pool) const = 0;

 private:
  InjectorKind kind_;
};

using InjectorList = std::vector<std::unique_ptr<Injector>>;

/// Builds the active injectors of `config`, already in canonical order.
/// Empty when config.enabled() is false.
InjectorList make_injectors(const FaultConfig& config);

/// Sorts a pipeline into canonical InjectorKind order (stable, so a
/// shuffled list of independent injectors applies identically).
void canonicalize(InjectorList& pipeline);

/// Applies a pipeline (canonicalised first) to clean telemetry. Masks are
/// initialised all-valid iff the pipeline is non-empty. Deterministic at
/// any thread count (null pool = global pool).
FaultedTelemetry inject(const telemetry::CoarseTelemetry& clean,
                        InjectorList pipeline, std::uint64_t seed,
                        util::ThreadPool* pool = nullptr);

/// Convenience: make_injectors(config) + inject with config.seed.
FaultedTelemetry inject(const telemetry::CoarseTelemetry& clean,
                        const FaultConfig& config,
                        util::ThreadPool* pool = nullptr);

/// Degradation-aware recovery of wrapped SNMP counters: maps every
/// per-interval reading d to ((d mod 2^bits) + 2^bits) mod 2^bits, which
/// equals the true count whenever that count is below 2^bits. The prepare
/// stage runs this before building C3 constraints.
void wrap_correct(telemetry::CoarseTelemetry& ct, std::int64_t bits);

}  // namespace fmnet::faults
