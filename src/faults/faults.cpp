#include "faults/faults.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/check.h"
#include "util/rng.h"

namespace fmnet::faults {

namespace {

// Event counters, bumped in bulk per apply() so injection loops stay tight.
struct FaultMetrics {
  obs::Counter& injections;
  obs::Counter& periodic_dropped;
  obs::Counter& lanz_dropped;
  obs::Counter& lanz_late;
  obs::Counter& snmp_jitter_events;
  obs::Counter& snmp_wraps;
  obs::Counter& duplicated;
  obs::Counter& reordered;
  static FaultMetrics& get() {
    auto& reg = obs::Registry::global();
    static FaultMetrics m{reg.counter("faults.injections"),
                          reg.counter("faults.periodic_dropped"),
                          reg.counter("faults.lanz_dropped"),
                          reg.counter("faults.lanz_late"),
                          reg.counter("faults.snmp_jitter_events"),
                          reg.counter("faults.snmp_wraps"),
                          reg.counter("faults.duplicated"),
                          reg.counter("faults.reordered")};
    return m;
  }
};

/// Seed for stream `series` of injector `kind`: two derivation levels keep
/// injectors independent of each other and series independent of lane
/// assignment.
std::uint64_t stream_seed(std::uint64_t seed, InjectorKind kind,
                          std::uint64_t series) {
  return derive_stream_seed(
      derive_stream_seed(seed, static_cast<std::uint64_t>(kind)), series);
}

/// Adjacent-swap reordering / stale-duplicate overwrite of one record
/// stream. The operator cannot detect either (the values look plausible),
/// so no mask is touched — this is the insidious corruption class.
class ReorderInjector : public Injector {
 public:
  explicit ReorderInjector(double rate)
      : Injector(InjectorKind::kReorder), rate_(rate) {}

  void apply(FaultedTelemetry& t, std::uint64_t seed,
             util::ThreadPool& pool) const override {
    const std::size_t queues = t.coarse.periodic_qlen.size();
    pool.parallel_for(
        0, static_cast<std::int64_t>(2 * queues), [&](std::int64_t s) {
          auto& v = s < static_cast<std::int64_t>(queues)
                        ? t.coarse.periodic_qlen[static_cast<std::size_t>(s)]
                              .values()
                        : t.coarse
                              .max_qlen[static_cast<std::size_t>(s) - queues]
                              .values();
          Rng rng(stream_seed(seed, kind(),
                              static_cast<std::uint64_t>(s)));
          std::int64_t local = 0;
          for (std::size_t k = 1; k < v.size(); ++k) {
            if (rng.bernoulli(rate_)) {
              std::swap(v[k - 1], v[k]);
              ++local;
            }
          }
          if (local > 0) FaultMetrics::get().reordered.add(local);
        });
  }

 private:
  double rate_;
};

class DuplicateInjector : public Injector {
 public:
  explicit DuplicateInjector(double rate)
      : Injector(InjectorKind::kDuplicate), rate_(rate) {}

  void apply(FaultedTelemetry& t, std::uint64_t seed,
             util::ThreadPool& pool) const override {
    const std::size_t queues = t.coarse.periodic_qlen.size();
    pool.parallel_for(
        0, static_cast<std::int64_t>(2 * queues), [&](std::int64_t s) {
          auto& v = s < static_cast<std::int64_t>(queues)
                        ? t.coarse.periodic_qlen[static_cast<std::size_t>(s)]
                              .values()
                        : t.coarse
                              .max_qlen[static_cast<std::size_t>(s) - queues]
                              .values();
          Rng rng(stream_seed(seed, kind(),
                              static_cast<std::uint64_t>(s)));
          std::int64_t local = 0;
          for (std::size_t k = 1; k < v.size(); ++k) {
            if (rng.bernoulli(rate_)) {
              v[k] = v[k - 1];
              ++local;
            }
          }
          if (local > 0) FaultMetrics::get().duplicated.add(local);
        });
  }

 private:
  double rate_;
};

/// Dropped reports: the operator's collector holds the last surviving
/// value (stale carry-forward) and the mask marks the interval invalid.
class DropInjector : public Injector {
 public:
  DropInjector(InjectorKind kind, double rate) : Injector(kind), rate_(rate) {}

  void apply(FaultedTelemetry& t, std::uint64_t seed,
             util::ThreadPool& pool) const override {
    const bool periodic = kind() == InjectorKind::kPeriodicDrop;
    auto& series = periodic ? t.coarse.periodic_qlen : t.coarse.max_qlen;
    auto& masks = periodic ? t.quality.periodic_valid : t.quality.lanz_valid;
    pool.parallel_for(
        0, static_cast<std::int64_t>(series.size()), [&](std::int64_t q) {
          auto& v = series[static_cast<std::size_t>(q)].values();
          auto& valid = masks[static_cast<std::size_t>(q)];
          Rng rng(stream_seed(seed, kind(),
                              static_cast<std::uint64_t>(q)));
          double last = 0.0;
          std::int64_t local = 0;
          for (std::size_t k = 0; k < v.size(); ++k) {
            if (rng.bernoulli(rate_)) {
              valid[k] = 0;
              v[k] = last;
              ++local;
            } else {
              last = v[k];
            }
          }
          if (local == 0) return;
          auto& m = FaultMetrics::get();
          (periodic ? m.periodic_dropped : m.lanz_dropped).add(local);
        });
  }

 private:
  double rate_;
};

/// Late LANZ reports: interval k shows a stale value at its deadline (C1
/// invalid), while the true maximum merges into interval k+1's report via
/// max — which keeps k+1 a sound upper bound whenever it was valid.
class LanzLateInjector : public Injector {
 public:
  explicit LanzLateInjector(double rate)
      : Injector(InjectorKind::kLanzLate), rate_(rate) {}

  void apply(FaultedTelemetry& t, std::uint64_t seed,
             util::ThreadPool& pool) const override {
    pool.parallel_for(
        0, static_cast<std::int64_t>(t.coarse.max_qlen.size()),
        [&](std::int64_t q) {
          auto& v = t.coarse.max_qlen[static_cast<std::size_t>(q)].values();
          auto& valid = t.quality.lanz_valid[static_cast<std::size_t>(q)];
          Rng rng(stream_seed(seed, kind(),
                              static_cast<std::uint64_t>(q)));
          double pending = -1.0;  // late value waiting to land here
          std::int64_t local = 0;
          for (std::size_t k = 0; k < v.size(); ++k) {
            const double current = v[k];
            double reported = current;
            const bool late = k + 1 < v.size() && rng.bernoulli(rate_);
            if (late) {
              valid[k] = 0;
              reported = k > 0 ? v[k - 1] : 0.0;
              ++local;
            }
            if (pending >= 0.0) reported = std::max(reported, pending);
            v[k] = reported;
            pending = late ? current : -1.0;
          }
          if (local > 0) FaultMetrics::get().lanz_late.add(local);
        });
  }

 private:
  double rate_;
};

/// Polling-boundary jitter: the poll closing interval k fires late, so a
/// fraction of interval k+1's packets is attributed to k — jointly for the
/// sent/dropped/received counters (one poll reads all three). Totals are
/// conserved and counts stay non-negative integers.
class SnmpJitterInjector : public Injector {
 public:
  explicit SnmpJitterInjector(double rate)
      : Injector(InjectorKind::kSnmpJitter), rate_(rate) {}

  void apply(FaultedTelemetry& t, std::uint64_t seed,
             util::ThreadPool& pool) const override {
    pool.parallel_for(
        0, static_cast<std::int64_t>(t.coarse.snmp_sent.size()),
        [&](std::int64_t p) {
          std::vector<double>* counters[3] = {
              &t.coarse.snmp_sent[static_cast<std::size_t>(p)].values(),
              &t.coarse.snmp_dropped[static_cast<std::size_t>(p)].values(),
              &t.coarse.snmp_received[static_cast<std::size_t>(p)].values()};
          Rng rng(stream_seed(seed, kind(),
                              static_cast<std::uint64_t>(p)));
          const std::size_t n = counters[0]->size();
          std::int64_t local = 0;
          for (std::size_t k = 0; k + 1 < n; ++k) {
            if (!rng.bernoulli(rate_)) continue;
            const double f = rng.uniform(0.0, 0.5);
            for (auto* c : counters) {
              const double moved = std::floor((*c)[k + 1] * f);
              (*c)[k] += moved;
              (*c)[k + 1] -= moved;
            }
            ++local;
          }
          if (local > 0) FaultMetrics::get().snmp_jitter_events.add(local);
        });
  }

 private:
  double rate_;
};

/// Counter wrap: the device exports a cumulative counter of `bits` width;
/// per-interval readings become diffs of consecutive readbacks, which go
/// negative when the counter wraps. The initial counter value is seeded so
/// that at least one wrap occurs within the campaign (a counter far from
/// its limit would make the fault a no-op on short runs).
class SnmpWrapInjector : public Injector {
 public:
  explicit SnmpWrapInjector(std::int64_t bits)
      : Injector(InjectorKind::kSnmpWrap), bits_(bits) {}

  void apply(FaultedTelemetry& t, std::uint64_t seed,
             util::ThreadPool& pool) const override {
    std::vector<std::vector<fmnet::TimeSeries>*> groups = {
        &t.coarse.snmp_sent, &t.coarse.snmp_dropped, &t.coarse.snmp_received};
    const std::size_t ports = t.coarse.snmp_sent.size();
    const std::uint64_t modulus = 1ULL << bits_;
    pool.parallel_for(
        0, static_cast<std::int64_t>(3 * ports), [&](std::int64_t s) {
          auto& v = (*groups[static_cast<std::size_t>(s) / ports])
                        [static_cast<std::size_t>(s) % ports]
                            .values();
          Rng rng(stream_seed(seed, kind(),
                              static_cast<std::uint64_t>(s)));
          std::uint64_t total = 0;
          for (const double d : v) {
            total += static_cast<std::uint64_t>(
                std::max<std::int64_t>(0, std::llround(d)));
          }
          // Start the counter close enough to 2^bits that it wraps within
          // this campaign (when it counts anything at all).
          const std::uint64_t offset =
              total > 0 ? (modulus - 1 - rng.next_u64() % total) &
                              (modulus - 1)
                        : rng.next_u64() & (modulus - 1);
          std::uint64_t cumulative = offset;
          std::uint64_t prev_read = offset;
          std::int64_t local = 0;
          for (std::size_t k = 0; k < v.size(); ++k) {
            cumulative += static_cast<std::uint64_t>(
                std::max<std::int64_t>(0, std::llround(v[k])));
            const std::uint64_t read = cumulative & (modulus - 1);
            const std::int64_t diff = static_cast<std::int64_t>(read) -
                                      static_cast<std::int64_t>(prev_read);
            if (diff < 0) ++local;
            v[k] = static_cast<double>(diff);
            prev_read = read;
          }
          if (local > 0) FaultMetrics::get().snmp_wraps.add(local);
        });
  }

 private:
  std::int64_t bits_;
};

/// Additive Gaussian noise on the queue-length channels (clamped at 0).
class NoiseInjector : public Injector {
 public:
  explicit NoiseInjector(double stddev)
      : Injector(InjectorKind::kNoise), stddev_(stddev) {}

  void apply(FaultedTelemetry& t, std::uint64_t seed,
             util::ThreadPool& pool) const override {
    const std::size_t queues = t.coarse.periodic_qlen.size();
    pool.parallel_for(
        0, static_cast<std::int64_t>(2 * queues), [&](std::int64_t s) {
          auto& v = s < static_cast<std::int64_t>(queues)
                        ? t.coarse.periodic_qlen[static_cast<std::size_t>(s)]
                              .values()
                        : t.coarse
                              .max_qlen[static_cast<std::size_t>(s) - queues]
                              .values();
          Rng rng(stream_seed(seed, kind(),
                              static_cast<std::uint64_t>(s)));
          for (double& x : v) {
            x = std::max(0.0, x + rng.normal(0.0, stddev_));
          }
        });
  }

 private:
  double stddev_;
};

/// Quantisation to a fixed packet step (coarse reporting granularity).
class QuantizeInjector : public Injector {
 public:
  explicit QuantizeInjector(std::int64_t step)
      : Injector(InjectorKind::kQuantize), step_(step) {}

  void apply(FaultedTelemetry& t, std::uint64_t /*seed*/,
             util::ThreadPool& pool) const override {
    const std::size_t queues = t.coarse.periodic_qlen.size();
    const double step = static_cast<double>(step_);
    pool.parallel_for(
        0, static_cast<std::int64_t>(2 * queues), [&](std::int64_t s) {
          auto& v = s < static_cast<std::int64_t>(queues)
                        ? t.coarse.periodic_qlen[static_cast<std::size_t>(s)]
                              .values()
                        : t.coarse
                              .max_qlen[static_cast<std::size_t>(s) - queues]
                              .values();
          for (double& x : v) {
            x = std::round(x / step) * step;
          }
        });
  }

 private:
  std::int64_t step_;
};

}  // namespace

bool FaultConfig::enabled() const {
  if (severity <= 0.0) return false;
  return periodic_drop > 0.0 || lanz_drop > 0.0 || lanz_late > 0.0 ||
         snmp_jitter > 0.0 || snmp_wrap_bits > 0 || duplicate > 0.0 ||
         reorder > 0.0 || noise > 0.0 || quantize > 1;
}

double FaultConfig::rate(double r) const {
  return std::clamp(r * severity, 0.0, 1.0);
}

double FaultConfig::noise_stddev() const {
  return std::max(0.0, noise * severity);
}

const char* injector_name(InjectorKind kind) {
  switch (kind) {
    case InjectorKind::kReorder:
      return "reorder";
    case InjectorKind::kDuplicate:
      return "duplicate";
    case InjectorKind::kPeriodicDrop:
      return "periodic-drop";
    case InjectorKind::kLanzDrop:
      return "lanz-drop";
    case InjectorKind::kLanzLate:
      return "lanz-late";
    case InjectorKind::kSnmpJitter:
      return "snmp-jitter";
    case InjectorKind::kSnmpWrap:
      return "snmp-wrap";
    case InjectorKind::kNoise:
      return "noise";
    case InjectorKind::kQuantize:
      return "quantize";
  }
  return "unknown";
}

InjectorList make_injectors(const FaultConfig& config) {
  InjectorList out;
  if (!config.enabled()) return out;
  if (config.rate(config.reorder) > 0.0) {
    out.push_back(
        std::make_unique<ReorderInjector>(config.rate(config.reorder)));
  }
  if (config.rate(config.duplicate) > 0.0) {
    out.push_back(
        std::make_unique<DuplicateInjector>(config.rate(config.duplicate)));
  }
  if (config.rate(config.periodic_drop) > 0.0) {
    out.push_back(std::make_unique<DropInjector>(
        InjectorKind::kPeriodicDrop, config.rate(config.periodic_drop)));
  }
  if (config.rate(config.lanz_drop) > 0.0) {
    out.push_back(std::make_unique<DropInjector>(
        InjectorKind::kLanzDrop, config.rate(config.lanz_drop)));
  }
  if (config.rate(config.lanz_late) > 0.0) {
    out.push_back(
        std::make_unique<LanzLateInjector>(config.rate(config.lanz_late)));
  }
  if (config.rate(config.snmp_jitter) > 0.0) {
    out.push_back(
        std::make_unique<SnmpJitterInjector>(config.rate(config.snmp_jitter)));
  }
  if (config.snmp_wrap_bits > 0) {
    FMNET_CHECK_LE(config.snmp_wrap_bits, 32);
    out.push_back(std::make_unique<SnmpWrapInjector>(config.snmp_wrap_bits));
  }
  if (config.noise_stddev() > 0.0) {
    out.push_back(std::make_unique<NoiseInjector>(config.noise_stddev()));
  }
  if (config.quantize > 1) {
    out.push_back(std::make_unique<QuantizeInjector>(config.quantize));
  }
  return out;
}

void canonicalize(InjectorList& pipeline) {
  std::stable_sort(pipeline.begin(), pipeline.end(),
                   [](const std::unique_ptr<Injector>& a,
                      const std::unique_ptr<Injector>& b) {
                     return static_cast<std::uint32_t>(a->kind()) <
                            static_cast<std::uint32_t>(b->kind());
                   });
}

FaultedTelemetry inject(const telemetry::CoarseTelemetry& clean,
                        InjectorList pipeline, std::uint64_t seed,
                        util::ThreadPool* pool) {
  FaultedTelemetry t;
  t.coarse = clean;
  if (pipeline.empty()) return t;
  obs::ScopedSpan span("faults.inject");
  FaultMetrics::get().injections.add(1);

  const std::size_t intervals = clean.num_intervals();
  t.quality.periodic_valid.assign(
      clean.periodic_qlen.size(),
      std::vector<std::uint8_t>(intervals, 1));
  t.quality.lanz_valid.assign(clean.max_qlen.size(),
                              std::vector<std::uint8_t>(intervals, 1));

  canonicalize(pipeline);
  util::ThreadPool& resolved = util::ThreadPool::resolve(pool);
  for (const auto& injector : pipeline) {
    injector->apply(t, seed, resolved);
  }
  return t;
}

FaultedTelemetry inject(const telemetry::CoarseTelemetry& clean,
                        const FaultConfig& config, util::ThreadPool* pool) {
  return inject(clean, make_injectors(config), config.seed, pool);
}

void wrap_correct(telemetry::CoarseTelemetry& ct, std::int64_t bits) {
  FMNET_CHECK(bits >= 1 && bits <= 32, "snmp wrap bits out of [1,32]");
  const std::int64_t modulus = std::int64_t{1} << bits;
  for (auto* group : {&ct.snmp_sent, &ct.snmp_dropped, &ct.snmp_received}) {
    for (auto& series : *group) {
      for (double& x : series.values()) {
        const std::int64_t d = std::llround(x);
        x = static_cast<double>(((d % modulus) + modulus) % modulus);
      }
    }
  }
}

}  // namespace fmnet::faults
