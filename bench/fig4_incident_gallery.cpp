// Reproduces Figure 4: the same queue-length incident imputed by
// (a) IterativeImputer, (b) Transformer-only, (c) Transformer+KAL, and
// (d) Transformer+KAL+CEM, rendered as ASCII and dumped to fig4_data.csv.
//
// Expected shape: (a) connect-the-dots, (b) finds the burst location but
// misses the known max, (c) approaches the max, (d) exactly consistent.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "impute/registry.h"
#include "nn/kal.h"
#include "util/csv.h"

using namespace fmnet;

int main() {
  bench::ScopedMetricsDump metrics_dump;
  bench::print_header("Figure 4 — one incident, four imputation methods");

  const core::Scenario s = bench::default_scenario(42, 6'000);
  core::Engine engine;
  const core::Campaign campaign = engine.campaign(s.campaign);
  const core::PreparedData data = engine.prepare(s, campaign);

  // Fit the four variants; +CEM wraps the fitted KAL model.
  const auto iter = engine.fit_method(s, "iterative", data);
  const auto plain = engine.fit_method(s, "transformer", data);
  const auto kal = engine.fit_method(s, "transformer+kal", data);
  impute::MethodParams params;
  params.cem = s.cem;
  const auto full = impute::Registry::with_cem(kal, params);

  // Pick the most bursty *test* window: largest max/mean contrast.
  const telemetry::ImputationExample* incident = nullptr;
  double best_score = -1.0;
  for (const auto& ex : data.split.test) {
    double peak = 0.0;
    double mean = 0.0;
    for (const float v : ex.target) {
      peak = std::max(peak, static_cast<double>(v));
      mean += v;
    }
    mean /= static_cast<double>(ex.target.size());
    const double score = peak - mean;
    if (score > best_score) {
      best_score = score;
      incident = &ex;
    }
  }
  std::printf("incident: queue %d, t = %zu..%zu ms\n\n", incident->queue,
              incident->start_ms, incident->start_ms + incident->window);

  std::vector<double> truth(incident->window);
  for (std::size_t t = 0; t < incident->window; ++t) {
    truth[t] = campaign.gt.queue_len[incident->queue][incident->start_ms + t];
  }
  const auto a = iter.imputer->impute(*incident);
  const auto b = plain.imputer->impute(*incident);
  const auto c = kal.imputer->impute(*incident);
  const auto d = full.imputer->impute(*incident);

  const double v_max = *std::max_element(truth.begin(), truth.end());
  auto decimate = [](const std::vector<double>& v) {
    std::vector<double> out;
    for (std::size_t i = 0; i < v.size(); i += 3) out.push_back(v[i]);
    return out;
  };
  std::printf("ASCII rendering (1 char = 3 ms, height = queue length):\n");
  bench::ascii_plot("ground truth", decimate(truth), v_max);
  bench::ascii_plot("(a) IterImputer", decimate(a), v_max);
  bench::ascii_plot("(b) Transformer", decimate(b), v_max);
  bench::ascii_plot("(c) +KAL", decimate(c), v_max);
  bench::ascii_plot("(d) +KAL+CEM", decimate(d), v_max);

  // Per-method consistency on this incident.
  std::printf("\nper-method constraint violations on the incident:\n");
  std::printf("%-18s %12s %12s %12s\n", "method", "max(C1)", "periodic(C2)",
              "sent(C3)");
  auto report = [&](const char* label, const std::vector<double>& series) {
    std::vector<double> norm(series.size());
    for (std::size_t t = 0; t < series.size(); ++t) {
      norm[t] = series[t] / incident->qlen_scale;
    }
    const auto v = nn::evaluate_constraints(norm, incident->constraints);
    std::printf("%-18s %12.4f %12.4f %12.4f\n", label, v.max_violation,
                v.periodic_violation, v.sent_violation);
  };
  report("IterImputer", a);
  report("Transformer", b);
  report("+KAL", c);
  report("+KAL+CEM", d);

  std::vector<double> t_axis(incident->window);
  for (std::size_t t = 0; t < t_axis.size(); ++t) {
    t_axis[t] = static_cast<double>(incident->start_ms + t);
  }
  write_csv("fig4_data.csv",
            {"t_ms", "truth", "iterimputer", "transformer", "kal",
             "kal_cem"},
            {t_axis, truth, a, b, c, d});
  std::printf("\nwrote fig4_data.csv (%zu rows)\n", t_axis.size());
  return 0;
}
