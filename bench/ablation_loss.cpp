// Ablation of the §4 loss choice: "We use EMD as our loss function as
// opposed to MSE because it improves the accuracy of the model in locating
// bursts. ... MSE encourages the model to find averages of plausible
// solutions that are overly smooth and is disadvantageous for bursts."
//
// Trains the same transformer with EMD and with MSE and compares the
// burst-location rows of Table 1.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace fmnet;

int main() {
  bench::ScopedMetricsDump metrics_dump;
  bench::print_header("Ablation — EMD vs MSE training loss (paper §4)");

  const core::Scenario s = bench::default_scenario(42, 5'000);
  core::Engine engine;
  const core::Campaign campaign = engine.campaign(s.campaign);
  const core::PreparedData data = engine.prepare(s, campaign);
  core::Table1Evaluator evaluator(campaign, data);

  Table table({"loss", "d. burst det", "e. burst height", "f. burst freq",
               "g. interarrival", "h. empty freq"});
  double emd_det = 0.0;
  double mse_det = 0.0;
  for (const auto loss : {impute::TrainConfig::Loss::kEmd,
                          impute::TrainConfig::Loss::kMse}) {
    core::Scenario sv = s;
    sv.train.loss = loss;
    const auto model = engine.fit_method(sv, "transformer", data);
    const auto row = evaluator.evaluate(*model.imputer);
    const bool is_emd = loss == impute::TrainConfig::Loss::kEmd;
    (is_emd ? emd_det : mse_det) = row.burst_detection + row.burst_height;
    table.add_row({is_emd ? "EMD" : "MSE", Table::fmt(row.burst_detection),
                   Table::fmt(row.burst_height),
                   Table::fmt(row.burst_frequency),
                   Table::fmt(row.burst_interarrival),
                   Table::fmt(row.empty_queue_freq)});
  }
  table.print(std::cout);
  std::printf("\nshape check — EMD locates bursts at least as well as MSE "
              "(det+height): %s\n",
              emd_det <= mse_det + 0.05 ? "PASS" : "FAIL");
  return 0;
}
