// Serving-core load bench (paper §5 real-time direction, PR-9): drives
// serve::ServeCore with N concurrent sessions replayed from a recorded
// campaign and answers the two questions that matter for a long-running
// imputation server:
//
//  1. determinism gate — the published stream (every session/tick/kind and
//     every fine-grained bit) must be identical at 1 lane and at 8 lanes
//     under a virtual clock. Divergence exits non-zero; CI treats it as a
//     hard failure, not a perf regression.
//  2. wall-clock load — how many windows/second the server sustains, the
//     p50/p99 ready-to-publish latency against the 50 ms interval budget,
//     and whether admission control had to shed anything at the nominal
//     session count.
//
// Knobs: FMNET_SERVE_SESSIONS (default 1000; FMNET_FAST shrinks training
// and tick count but NOT the session count — the 1000-session claim is the
// point), FMNET_SERVE_TICKS, FMNET_SERVE_INT8=1 to serve the int8-quantised
// inference path (PR-8) instead of fp32.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "impute/registry.h"
#include "impute/transformer_imputer.h"
#include "serve/serve.h"
#include "util/clock.h"
#include "util/stats.h"
#include "util/table.h"

using namespace fmnet;

namespace {

std::uint64_t fnv64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t hash_published(const std::vector<serve::PublishedWindow>& ws) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& w : ws) {
    h = fnv64(h, static_cast<std::uint64_t>(w.session));
    h = fnv64(h, static_cast<std::uint64_t>(w.tick));
    h = fnv64(h, static_cast<std::uint64_t>(w.kind));
    for (const double v : w.fine) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &v, sizeof bits);
      h = fnv64(h, bits);
    }
  }
  return h;
}

/// One full virtual-clock replay on a dedicated pool; returns the hash of
/// the published stream.
std::uint64_t replay_hash(const serve::ServeConfig& cfg,
                          const std::shared_ptr<impute::Imputer>& model,
                          std::size_t window_intervals,
                          const core::PreparedData& data,
                          std::int64_t queues_per_port, std::size_t lanes) {
  util::ThreadPool pool(lanes);
  util::VirtualClock clock;
  serve::ServeCore core(cfg, model, window_intervals,
                        data.dataset_config.factor,
                        data.dataset_config.qlen_scale,
                        data.dataset_config.count_scale, impute::CemConfig{},
                        &clock, &pool);
  serve::ReplaySource source(data.coarse, queues_per_port, cfg.sessions);
  std::vector<impute::CoarseIntervalUpdate> updates;
  std::vector<serve::PublishedWindow> out;
  for (std::int64_t t = 0; t < cfg.ticks; ++t) {
    source.fill(t, updates);
    core.tick(updates, out);
    clock.advance(cfg.interval_ms * 1e-3);
  }
  core.drain(out);
  return hash_published(out);
}

}  // namespace

int main() {
  bench::ScopedMetricsDump metrics_dump;
  bench::print_header(
      "Serving core load: concurrent sessions vs the 50 ms interval budget");

  // Serving-tuned compact model: a single-interval context window
  // (attention is quadratic in window length) and a narrow transformer.
  // Serving trades a little imputation capacity for the throughput needed
  // to clear 1000 sessions inside one coarse interval on a single core;
  // the batch pipeline keeps the full-size model.
  core::Scenario s = bench::default_scenario(42, 5'000);
  s.window_ms = bench::env_int("FMNET_SERVE_WINDOW_MS", 50);
  s.model.d_model = 8;
  s.model.num_heads = 1;
  s.model.num_layers = 1;
  s.model.d_ff = 16;

  core::Engine engine;
  const core::Campaign campaign = engine.campaign(s.campaign);
  const core::PreparedData data = engine.prepare(s, campaign);
  const auto built = engine.fit_method(s, "transformer+kal", data);

  const bool int8 = bench::env_int("FMNET_SERVE_INT8", 0) != 0;
  if (int8) {
    auto* tf =
        dynamic_cast<impute::TransformerImputer*>(built.imputer.get());
    if (tf != nullptr) {
      impute::InferConfig ic;
      ic.quantize_int8 = true;
      tf->set_infer_config(ic);
    }
  }

  const std::size_t window_intervals = s.window_ms / s.factor;
  const auto queues_per_port = campaign.switch_config.queues_per_port;

  // ---- phase 1: lane-count determinism gate (virtual clock) -------------
  serve::ServeConfig det;
  det.sessions = 128;
  det.ticks = 8;
  const std::uint64_t h1 = replay_hash(det, built.imputer, window_intervals,
                                       data, queues_per_port, 1);
  const std::uint64_t h8 = replay_hash(det, built.imputer, window_intervals,
                                       data, queues_per_port, 8);
  std::printf("determinism gate — published stream hash, 1 lane vs 8 "
              "lanes: %016llx vs %016llx: %s\n",
              static_cast<unsigned long long>(h1),
              static_cast<unsigned long long>(h8),
              h1 == h8 ? "PASS" : "FAIL");
  if (h1 != h8) {
    std::fprintf(stderr,
                 "serving_load: published stream diverged across lane "
                 "counts — determinism contract broken\n");
    return 1;
  }

  // ---- phase 2: wall-clock load -----------------------------------------
  serve::ServeConfig load;
  load.sessions = bench::env_int("FMNET_SERVE_SESSIONS", 1000);
  load.ticks = bench::env_int("FMNET_SERVE_TICKS", fast_mode() ? 12 : 60);
  serve::ServeCore core(load, built.imputer, window_intervals,
                        data.dataset_config.factor,
                        data.dataset_config.qlen_scale,
                        data.dataset_config.count_scale);
  serve::ReplaySource source(data.coarse, queues_per_port, load.sessions);
  std::vector<impute::CoarseIntervalUpdate> updates;
  std::vector<serve::PublishedWindow> out;
  const util::Clock& clk = util::Clock::wall();
  const double t0 = clk.now();
  for (std::int64_t t = 0; t < load.ticks; ++t) {
    source.fill(t, updates);
    core.tick(updates, out);
  }
  core.drain(out);
  const double elapsed = clk.now() - t0;

  std::vector<double> raw_ms;
  for (const auto& w : out) {
    if (w.kind == serve::WindowKind::kRaw) {
      raw_ms.push_back(w.latency_seconds * 1e3);
    }
  }
  const auto& st = core.stats();
  const double win_per_s =
      elapsed > 0 ? static_cast<double>(st.windows_raw) / elapsed : 0.0;
  const double repair_win_per_s =
      elapsed > 0 ? static_cast<double>(st.windows_repaired) / elapsed : 0.0;
  const std::int64_t offered = st.windows_raw + st.windows_degraded;
  const double shed_rate =
      offered > 0
          ? static_cast<double>(st.shed_queue) / static_cast<double>(offered)
          : 0.0;
  const double p50 = percentile(raw_ms, 50);
  const double p99 = percentile(raw_ms, 99);

  auto& reg = obs::Registry::global();
  reg.gauge("bench.serve.sessions").set(static_cast<double>(load.sessions));
  reg.gauge("bench.serve.win_per_s").set_max(win_per_s);
  reg.gauge("bench.serve.repair.win_per_s").set_max(repair_win_per_s);
  reg.gauge("bench.serve.p50_ms").set(p50);
  reg.gauge("bench.serve.p99_ms").set(p99);
  reg.gauge("bench.serve.shed_rate").set(shed_rate);

  Table table({"metric", "value"});
  table.add_row({"sessions", std::to_string(load.sessions)});
  table.add_row({"ticks", std::to_string(load.ticks)});
  table.add_row({"inference path", int8 ? "int8" : "fp32"});
  table.add_row({"raw windows", std::to_string(st.windows_raw)});
  table.add_row({"repaired windows", std::to_string(st.windows_repaired)});
  table.add_row({"degraded windows", std::to_string(st.windows_degraded)});
  table.add_row({"batches", std::to_string(st.batches)});
  table.add_row({"raw windows/s", Table::fmt(win_per_s)});
  table.add_row({"repaired windows/s", Table::fmt(repair_win_per_s)});
  table.add_row({"p50 raw latency (ms)", Table::fmt(p50)});
  table.add_row({"p99 raw latency (ms)", Table::fmt(p99)});
  table.add_row({"shed rate", Table::fmt(shed_rate)});
  table.print(std::cout);

  const double budget_ms = load.interval_ms;
  std::printf(
      "\nshape check — p99 ready-to-publish latency %.2f ms fits the %.0f "
      "ms interval budget at %lld sessions: %s\n",
      p99, budget_ms, static_cast<long long>(load.sessions),
      p99 < budget_ms ? "PASS" : "FAIL");
  std::printf(
      "shape check — admission control shed nothing at the nominal load "
      "(shed rate %.4f): %s\n",
      shed_rate, shed_rate == 0.0 ? "PASS" : "FAIL");
  return 0;
}
