// Robustness sweep bench: degradation curves of the imputation methods as
// telemetry faults get worse (core/robustness.h).
//
// The fault profile mirrors examples/scenarios/robustness.scn — lost LANZ
// and periodic reports, Gaussian reading noise, 32-bit SNMP counter wrap —
// scaled across a severity grid. Severity 0 is the clean pipeline, so the
// first row doubles as the baseline Table-1 EMD. Output: a curve table on
// stdout, ascii sparklines per method, and the canonical JSON report
// (FMNET_ROBUSTNESS_OUT, default BENCH_robustness.json).
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/robustness.h"

using namespace fmnet;

int main() {
  bench::ScopedMetricsDump metrics_dump;
  bench::print_header("Robustness: imputation error vs telemetry fault "
                      "severity");

  core::Scenario s = bench::default_scenario(/*seed=*/42, /*full_ms=*/4'000);
  s.name = "bench-robustness";
  s.methods = fast_mode()
                  ? std::vector<std::string>{"linear", "rate", "autoencoder"}
                  : std::vector<std::string>{"linear", "rate", "autoencoder",
                                             "transformer+kal"};
  s.faults.seed = 7;
  s.faults.periodic_drop = 0.3;
  s.faults.lanz_drop = 0.3;
  s.faults.noise = 4.0;
  s.faults.snmp_wrap_bits = 32;

  const std::vector<double> severities = {0.0, 0.25, 0.5, 0.75, 1.0};

  core::Engine engine;
  const auto curves = core::run_robustness_sweep(engine, s, severities);

  std::printf("%-24s %10s %14s %14s\n", "method", "severity", "emd(pkts)",
              "mae(pkts)");
  for (const auto& p : curves.points) {
    std::printf("%-24s %10.2f %14.6f %14.6f\n", p.method.c_str(),
                p.severity, p.emd, p.mae);
  }

  std::printf("\nEMD degradation (per method, left = clean):\n");
  for (const auto& method : curves.methods) {
    std::vector<double> emds;
    double peak = 0.0;
    for (const auto& p : curves.points) {
      if (p.method != method) continue;
      emds.push_back(p.emd);
      peak = std::max(peak, p.emd);
    }
    bench::ascii_plot(method.c_str(), emds, peak);
  }

  const char* out_env = std::getenv("FMNET_ROBUSTNESS_OUT");
  const std::string out = (out_env != nullptr && out_env[0] != '\0')
                              ? out_env
                              : "BENCH_robustness.json";
  core::write_robustness_json(curves, out);
  std::fprintf(stderr, "wrote robustness report to %s\n", out.c_str());
  return 0;
}
