// google-benchmark microbenchmarks of the substrates: tensor ops,
// transformer forward/backward, smtlite solving, switch simulation
// throughput, and single-interval CEM repair.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "core/pipeline.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "impute/cem.h"
#include "nn/losses.h"
#include "nn/transformer.h"
#include "smt/model.h"
#include "smt/solver.h"
#include "switchsim/switch.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "traffic/sources.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace fmnet;

void BM_TensorMatmul(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  const auto a = tensor::Tensor::randn({n, n}, rng);
  const auto b = tensor::Tensor::randn({n, n}, rng);
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b).data().data());
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // A matmul is 2*m*k*n FLOPs (multiply + add per inner-product step).
  const double flops = 2.0 * static_cast<double>(n) * n * n;
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(flops));
  state.counters["gflops"] = benchmark::Counter(
      flops * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
  if (elapsed_s > 0.0) {
    obs::Registry::global()
        .gauge("bench.gemm.n" + std::to_string(n) + ".gflops")
        .set_max(flops * 1e-9 * static_cast<double>(state.iterations()) /
                 elapsed_s);
  }
}
BENCHMARK(BM_TensorMatmul)->Arg(32)->Arg(64)->Arg(128);

void BM_TransformerForwardBackward(benchmark::State& state) {
  Rng rng(2);
  nn::TransformerConfig cfg;
  cfg.input_channels = 4;
  cfg.d_model = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  cfg.d_ff = 32;
  cfg.max_seq_len = 512;
  nn::ImputationTransformer model(cfg, rng);
  const auto x = tensor::Tensor::randn({4, state.range(0), 4}, rng);
  const auto y = tensor::Tensor::randn({4, state.range(0)}, rng);
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    model.zero_grad();
    auto loss = nn::emd_loss(model.forward(x, rng), y);
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  state.SetItemsProcessed(state.iterations());
  if (elapsed_s > 0.0) {
    obs::Registry::global()
        .gauge("bench.transformer.t" + std::to_string(state.range(0)) +
               ".steps_per_s")
        .set_max(static_cast<double>(state.iterations()) / elapsed_s);
  }
}
BENCHMARK(BM_TransformerForwardBackward)->Arg(100)->Arg(300);

void BM_SwitchStepThroughput(benchmark::State& state) {
  switchsim::SwitchConfig cfg;
  cfg.num_ports = static_cast<std::int32_t>(state.range(0));
  cfg.buffer_size = 600;
  auto source = traffic::make_paper_workload(cfg.num_ports, 7);
  switchsim::OutputQueuedSwitch sw(cfg);
  std::vector<switchsim::Arrival> arrivals;
  std::int64_t slot = 0;
  for (auto _ : state) {
    arrivals.clear();
    source->generate(slot++, arrivals);
    sw.step(arrivals);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwitchStepThroughput)->Arg(8)->Arg(32);

void BM_SmtPigeonholeSat(benchmark::State& state) {
  // Satisfiable instance: P pigeons, P holes.
  const int p_count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    smt::Model m;
    std::vector<std::vector<smt::VarId>> in(p_count);
    for (int p = 0; p < p_count; ++p) {
      smt::LinExpr sum;
      for (int h = 0; h < p_count; ++h) {
        in[p].push_back(m.new_bool());
        sum = sum + smt::LinExpr(in[p][h]);
      }
      m.add_linear(sum, smt::Cmp::kEq, 1);
    }
    for (int h = 0; h < p_count; ++h) {
      smt::LinExpr sum;
      for (int p = 0; p < p_count; ++p) sum = sum + smt::LinExpr(in[p][h]);
      m.add_linear(sum, smt::Cmp::kLe, 1);
    }
    smt::Solver solver(m);
    benchmark::DoNotOptimize(solver.solve().status);
  }
}
BENCHMARK(BM_SmtPigeonholeSat)->Arg(8)->Arg(16);

void BM_CemFastRepairInterval(benchmark::State& state) {
  Rng rng(3);
  const std::int64_t factor = state.range(0);
  impute::CemConstraints c;
  c.coarse_factor = factor;
  c.window_max = {40};
  c.port_sent = {factor / 2};
  c.sample_idx = {0};
  c.sample_val = {10};
  std::vector<double> imputed(static_cast<std::size_t>(factor));
  for (auto& v : imputed) v = rng.uniform(0.0, 50.0);
  impute::ConstraintEnforcementModule cem;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cem.correct(imputed, c).objective);
  }
}
BENCHMARK(BM_CemFastRepairInterval)->Arg(50)->Arg(200);

// Campaign generation sharded across an explicit thread count. The output
// is bit-identical for every Arg; the wall-clock ratio between Arg(1) and
// Arg(4) is the tentpole speedup figure (≈ #cores on a 4+-core host).
void BM_CampaignShardedThreads(benchmark::State& state) {
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  core::CampaignConfig cfg;
  cfg.num_ports = 4;
  cfg.buffer_size = 300;
  cfg.slots_per_ms = 30;
  cfg.total_ms = 1'200;
  cfg.shard_ms = 300;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_campaign(cfg, &pool).gt.num_ms());
  }
  state.SetItemsProcessed(state.iterations() * cfg.total_ms);
}
BENCHMARK(BM_CampaignShardedThreads)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Multi-window CEM correction with the SMT engine (the expensive one),
// windows solved concurrently on an explicit thread count.
void BM_CemCorrectThreads(benchmark::State& state) {
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  Rng rng(5);
  const std::int64_t factor = 15;
  const std::int64_t windows = 8;
  impute::CemConstraints c;
  c.coarse_factor = factor;
  std::vector<double> imputed;
  for (std::int64_t w = 0; w < windows; ++w) {
    c.window_max.push_back(40);
    c.port_sent.push_back(factor / 2);
    c.sample_idx.push_back(w * factor);
    c.sample_val.push_back(10);
    for (std::int64_t t = 0; t < factor; ++t) {
      imputed.push_back(rng.uniform(0.0, 50.0));
    }
  }
  impute::CemConfig cem_cfg;
  cem_cfg.engine = impute::CemEngine::kSmtBranchAndBound;
  impute::ConstraintEnforcementModule cem(cem_cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cem.correct(imputed, c, &pool).objective);
  }
  state.SetItemsProcessed(state.iterations() * windows);
}
BENCHMARK(BM_CemCorrectThreads)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_EmdLoss(benchmark::State& state) {
  Rng rng(4);
  const auto a = tensor::Tensor::randn({8, 300}, rng, 1.0f, true);
  const auto b = tensor::Tensor::randn({8, 300}, rng);
  for (auto _ : state) {
    auto loss = nn::emd_loss(a, b);
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_EmdLoss);

}  // namespace

// Expanded BENCHMARK_MAIN() with a final metrics export, so CI's
// bench-smoke job can archive the FMNET_METRICS JSON alongside the
// google-benchmark output.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Pool effectiveness across the whole bench run (hits / pooled lookups).
  const auto ps = fmnet::tensor::pool::stats();
  if (ps.hits + ps.misses > 0) {
    fmnet::obs::Registry::global()
        .gauge("bench.tensor_pool.hit_rate")
        .set(static_cast<double>(ps.hits) /
             static_cast<double>(ps.hits + ps.misses));
  }
  fmnet::obs::Registry::global()
      .gauge("bench.tensor_pool.reused_mb")
      .set(static_cast<double>(ps.reused_bytes) / (1024.0 * 1024.0));
  fmnet::obs::finalize();
  return 0;
}
