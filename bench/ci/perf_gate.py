#!/usr/bin/env python3
"""Shared CI perf/accuracy gate over fmnet.metrics.v1 bench documents.

One protocol for every bench job (CEM repair, kernels, batched inference):

* Throughput keys (--keys) are compared as current/baseline ratios and
  normalised by the run's MEDIAN ratio, so a uniformly slower CI runner
  cancels out while a single metric regressing relative to the others
  fails. The default tolerance is a >30% normalised regression
  (--max-regression 0.30).
* Absolute floors (--floor KEY:MIN) gate within-run quantities that are
  machine-independent — speedup ratios, hit rates — straight from the
  current document.
* Absolute ceilings (--ceiling KEY:MAX) gate quantities that must stay
  small, e.g. the int8-vs-fp32 EMD accuracy delta.
* --require-counter NAME asserts a counter fired at all (e.g. the repair
  cache actually served hits during the bench).

Gauges are read as best-of-run: max(value, max) when the gauge tracked a
max across repetitions, else the final value — the committed baselines
use the same convention, which tames scheduler noise.

Exit status is non-zero on any violation; every check prints its verdict
so the CI log reads as a report.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys


def best(doc: dict, key: str) -> float:
    """Best-of-run reading of a gauge: its final value or tracked max."""
    try:
        g = doc["gauges"][key]
    except KeyError:
        raise SystemExit(f"perf_gate: gauge {key!r} missing from document")
    return max(g["value"], g.get("max", g["value"]))


def parse_bound(spec: str) -> tuple[str, float]:
    key, sep, bound = spec.rpartition(":")
    if not sep or not key:
        raise SystemExit(f"perf_gate: bad bound spec {spec!r} (want KEY:NUM)")
    return key, float(bound)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", help="committed baseline metrics JSON")
    ap.add_argument("--current", required=True,
                    help="metrics JSON from this run")
    ap.add_argument("--keys", default="",
                    help="comma-separated throughput gauge keys for the "
                         "median-normalised regression rule")
    ap.add_argument("--max-regression", type=float, default=0.30,
                    help="normalised relative regression that fails a key "
                         "(default 0.30)")
    ap.add_argument("--floor", action="append", default=[],
                    metavar="KEY:MIN",
                    help="current-run gauge that must be >= MIN "
                         "(best-of-run reading; repeatable)")
    ap.add_argument("--ceiling", action="append", default=[],
                    metavar="KEY:MAX",
                    help="current-run gauge that must be <= MAX "
                         "(final value, not max; repeatable)")
    ap.add_argument("--require-counter", action="append", default=[],
                    metavar="NAME",
                    help="counter that must be > 0 in the current run "
                         "(repeatable)")
    args = ap.parse_args()

    cur = json.load(open(args.current))
    if cur.get("schema") != "fmnet.metrics.v1":
        raise SystemExit(
            f"perf_gate: {args.current} schema is {cur.get('schema')!r}, "
            "want fmnet.metrics.v1")
    failures: list[str] = []

    keys = [k for k in args.keys.split(",") if k]
    if keys:
        if not args.baseline:
            raise SystemExit("perf_gate: --keys requires --baseline")
        base = json.load(open(args.baseline))
        ratios = {k: best(cur, k) / best(base, k) for k in keys}
        runner = statistics.median(ratios.values())
        print(f"runner speed vs baseline machine: {runner:.2f}x")
        for k, r in sorted(ratios.items()):
            rel = r / runner
            ok = rel >= 1.0 - args.max_regression
            print(f"  {k}: {r:.2f}x raw, {rel:.2f}x normalised "
                  f"[{'ok' if ok else 'REGRESSED'}]")
            if not ok:
                failures.append(f"{k} regressed >"
                                f"{args.max_regression:.0%} normalised")

    for spec in args.floor:
        key, bound = parse_bound(spec)
        val = best(cur, key)
        ok = val >= bound
        print(f"  floor {key}: {val:.3f} >= {bound:.3f} "
              f"[{'ok' if ok else 'FAILED'}]")
        if not ok:
            failures.append(f"{key} below floor {bound}")

    for spec in args.ceiling:
        key, bound = parse_bound(spec)
        try:
            val = cur["gauges"][key]["value"]
        except KeyError:
            raise SystemExit(f"perf_gate: gauge {key!r} missing from "
                             "document")
        ok = val <= bound
        print(f"  ceiling {key}: {val:.6f} <= {bound:.6f} "
              f"[{'ok' if ok else 'FAILED'}]")
        if not ok:
            failures.append(f"{key} above ceiling {bound}")

    for name in args.require_counter:
        n = cur.get("counters", {}).get(name, 0)
        ok = n > 0
        print(f"  counter {name}: {n} [{'ok' if ok else 'FAILED'}]")
        if not ok:
            failures.append(f"counter {name} never fired")

    if failures:
        print("perf_gate FAILED:", "; ".join(failures), file=sys.stderr)
        return 1
    print("perf_gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
