// Reproduces Figure 1: "Sampling the queue length hides significant
// insights. The various coarse-grained time series are correlated, e.g.,
// drop increases with queue length."
//
// Runs the paper workload, picks the most congested queue, renders the
// fine-grained queue length against the coarse periodic/max samples, and
// quantifies the cross-series correlations the paper's insight relies on.
// Also writes fig1_data.csv for external plotting.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"

using namespace fmnet;

int main() {
  bench::ScopedMetricsDump metrics_dump;
  bench::print_header(
      "Figure 1 — coarse sampling hides incidents; series are correlated");

  const core::Scenario s = bench::default_scenario(42);
  core::Engine engine;
  const core::Campaign campaign = engine.campaign(s.campaign);
  const core::PreparedData data = engine.prepare(s, campaign);

  // Busiest queue = largest total queue mass.
  std::size_t busiest = 0;
  double best_mass = -1.0;
  for (std::size_t q = 0; q < campaign.gt.queue_len.size(); ++q) {
    const double mass = campaign.gt.queue_len[q].sum();
    if (mass > best_mass) {
      best_mass = mass;
      busiest = q;
    }
  }
  const std::int32_t port = static_cast<std::int32_t>(busiest) /
                            campaign.switch_config.queues_per_port;
  std::printf("busiest queue: %zu (port %d), peak %.0f pkts\n\n", busiest,
              port, campaign.gt.queue_len[busiest].max());

  // Show the 300 ms excerpt whose incident is *most hidden* by periodic
  // sampling: maximise (window peak − peak seen by sampling) — this is
  // exactly the phenomenon Fig. 1 illustrates.
  const auto& fine = campaign.gt.queue_len[busiest];
  std::size_t begin = 0;
  double most_hidden = -1.0;
  for (std::size_t w = 0; w + 300 <= fine.size(); w += 300) {
    double peak = 0.0;
    double seen = 0.0;
    for (std::size_t t = w; t < w + 300; ++t) {
      peak = std::max(peak, fine[t]);
      if (t % 50 == 0) seen = std::max(seen, fine[t]);
    }
    if (peak - seen > most_hidden) {
      most_hidden = peak - seen;
      begin = w;
    }
  }
  const std::size_t end = std::min(fine.size(), begin + 300);

  std::vector<double> real(fine.values().begin() + begin,
                           fine.values().begin() + end);
  std::vector<double> periodic(real.size(), 0.0);
  std::vector<double> maxes(real.size(), 0.0);
  std::vector<double> sent(real.size(), 0.0);
  std::vector<double> drops(real.size(), 0.0);
  for (std::size_t t = 0; t < real.size(); ++t) {
    const std::size_t interval = (begin + t) / 50;
    periodic[t] = data.coarse.periodic_qlen[busiest][interval];
    maxes[t] = data.coarse.max_qlen[busiest][interval];
    sent[t] = data.coarse.snmp_sent[port][interval];
    drops[t] = data.coarse.snmp_dropped[port][interval];
  }
  const double v_max = *std::max_element(real.begin(), real.end());
  std::printf("300 ms excerpt around the campaign peak (1 char = 3 ms):\n");
  auto decimate = [](const std::vector<double>& v) {
    std::vector<double> out;
    for (std::size_t i = 0; i < v.size(); i += 3) out.push_back(v[i]);
    return out;
  };
  bench::ascii_plot("Real Qlen", decimate(real), v_max);
  bench::ascii_plot("Periodic Qlen", decimate(periodic), v_max);
  bench::ascii_plot("Max Qlen (LANZ)", decimate(maxes), v_max);
  std::printf("\n");

  // Information loss of sampling: how much of the peak does the operator
  // see without imputation?
  const double seen_peak =
      *std::max_element(periodic.begin(), periodic.end());
  std::printf(
      "peak queue in excerpt: %.0f pkts; periodic sampling sees only %.0f "
      "(%.0f%% hidden)\n\n",
      v_max, seen_peak, 100.0 * (1.0 - seen_peak / std::max(1.0, v_max)));

  // Correlations over the whole campaign at 50 ms granularity (paper: "an
  // increase in the queue length is accompanied by an increase in the
  // coarse-grained packets sent and dropped in the same interval").
  Table table({"pair", "pearson"});
  const auto& qmax_series = data.coarse.max_qlen[busiest].values();
  table.add_row({"max qlen vs port sent",
                 Table::fmt(pearson(qmax_series,
                                    data.coarse.snmp_sent[port].values()))});
  table.add_row(
      {"max qlen vs port drops",
       Table::fmt(pearson(qmax_series,
                          data.coarse.snmp_dropped[port].values()))});
  // Shared buffer coupling: this queue vs its port sibling.
  const std::size_t sibling = busiest ^ 1u;
  table.add_row(
      {"max qlen vs sibling queue",
       Table::fmt(pearson(qmax_series,
                          data.coarse.max_qlen[sibling].values()))});
  table.print(std::cout);

  write_csv("fig1_data.csv",
            {"t_ms", "real_qlen", "periodic", "lanz_max", "snmp_sent",
             "snmp_drop"},
            {[&] {
               std::vector<double> ts(real.size());
               for (std::size_t i = 0; i < ts.size(); ++i) {
                 ts[i] = static_cast<double>(begin + i);
               }
               return ts;
             }(),
             real, periodic, maxes, sent, drops});
  std::printf("\nwrote fig1_data.csv (%zu rows)\n", real.size());
  return 0;
}
