// Reproduces the §3 claim of a 50x granularity gain (50 ms -> 1 ms) and
// probes how the benefit of the knowledge-augmented pipeline scales with
// the imputation factor: sweep factor ∈ {10, 25, 50} with everything else
// fixed, reporting the consistency and burst rows for Transformer+KAL+CEM
// vs the naive baseline.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "impute/registry.h"
#include "util/table.h"

using namespace fmnet;

int main() {
  bench::ScopedMetricsDump metrics_dump;
  bench::print_header("Granularity sweep — imputation factor 10x/25x/50x");

  const core::Scenario s = bench::default_scenario(42, 5'000);
  core::Engine engine;
  const core::Campaign campaign = engine.campaign(s.campaign);

  Table table({"factor", "method", "a. max", "b. periodic", "d. burst det",
               "e. burst height", "h. empty freq"});

  const std::vector<std::size_t> factors =
      fast_mode() ? std::vector<std::size_t>{10, 50}
                  : std::vector<std::size_t>{10, 25, 50};
  for (const std::size_t factor : factors) {
    // Window = 6 intervals, as in the paper's 300 ms / 50 ms layout.
    core::Scenario sv = s;
    sv.window_ms = 6 * factor;
    sv.factor = factor;
    const core::PreparedData data = engine.prepare(sv, campaign);
    core::Table1Evaluator evaluator(campaign, data);

    const auto naive = engine.fit_method(sv, "linear", data);
    const auto naive_row = evaluator.evaluate(*naive.imputer);

    const auto kal = engine.fit_method(sv, "transformer+kal", data);
    impute::MethodParams params;
    params.cem = sv.cem;
    const auto full = impute::Registry::with_cem(kal, params);
    const auto full_row = evaluator.evaluate(*full.imputer);

    for (const auto* row : {&naive_row, &full_row}) {
      table.add_row({std::to_string(factor) + "x", row->method,
                     Table::fmt(row->max_constraint),
                     Table::fmt(row->periodic_constraint),
                     Table::fmt(row->burst_detection),
                     Table::fmt(row->burst_height),
                     Table::fmt(row->empty_queue_freq)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nshape: the knowledge-augmented pipeline sustains consistency "
      "(a, b ~ 0) at every factor, while the naive baseline degrades as "
      "the factor grows — the 50x setting of the paper is the hardest.\n");
  return 0;
}
