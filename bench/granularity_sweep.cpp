// Reproduces the §3 claim of a 50x granularity gain (50 ms -> 1 ms) and
// probes how the benefit of the knowledge-augmented pipeline scales with
// the imputation factor: sweep factor ∈ {10, 25, 50} with everything else
// fixed, reporting the consistency and burst rows for Transformer+KAL+CEM
// vs the naive baseline.
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "impute/knowledge_imputer.h"
#include "impute/linear_interp.h"
#include "util/table.h"

using namespace fmnet;

int main() {
  bench::ScopedMetricsDump metrics_dump;
  bench::print_header("Granularity sweep — imputation factor 10x/25x/50x");

  const core::Campaign campaign =
      core::run_campaign(bench::default_campaign(42, 5'000));

  Table table({"factor", "method", "a. max", "b. periodic", "d. burst det",
               "e. burst height", "h. empty freq"});

  const std::vector<std::size_t> factors =
      fast_mode() ? std::vector<std::size_t>{10, 50}
                  : std::vector<std::size_t>{10, 25, 50};
  for (const std::size_t factor : factors) {
    // Window = 6 intervals, as in the paper's 300 ms / 50 ms layout.
    const core::PreparedData data =
        core::prepare_data(campaign, 6 * factor, factor);
    core::Table1Evaluator evaluator(campaign, data);

    impute::LinearInterpImputer naive;
    const auto naive_row = evaluator.evaluate(naive);

    auto kal = std::make_shared<impute::TransformerImputer>(
        bench::default_model(), bench::default_training(true));
    kal->train(data.split.train);
    impute::KnowledgeAugmentedImputer full(kal);
    const auto full_row = evaluator.evaluate(full);

    for (const auto* row : {&naive_row, &full_row}) {
      table.add_row({std::to_string(factor) + "x", row->method,
                     Table::fmt(row->max_constraint),
                     Table::fmt(row->periodic_constraint),
                     Table::fmt(row->burst_detection),
                     Table::fmt(row->burst_height),
                     Table::fmt(row->empty_queue_freq)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nshape: the knowledge-augmented pipeline sustains consistency "
      "(a, b ~ 0) at every factor, while the naive baseline degrades as "
      "the factor grows — the 50x setting of the paper is the hardest.\n");
  return 0;
}
