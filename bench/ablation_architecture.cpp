// Architecture ablation (paper §2.2: "We find transformers to be
// particularly suitable models for telemetry imputation"): the same data
// and loss across four model families —
//   * pointwise MLP (no temporal context at all),
//   * bidirectional GRU (recurrent context),
//   * transformer encoder (attention context; the paper's choice),
//   * physics-informed rate transformer (§5's intermediate-variable idea:
//     predict net inflow, derive queues through the Lindley recursion).
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "impute/alt_models.h"
#include "impute/rate_imputer.h"
#include "impute/transformer_imputer.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace fmnet;

int main() {
  bench::ScopedMetricsDump metrics_dump;
  bench::print_header(
      "Architecture ablation — MLP vs BiGRU vs Transformer vs RateNet");

  const core::Campaign campaign =
      core::run_campaign(bench::default_campaign(42, 5'000));
  const core::PreparedData data = core::prepare_data(campaign, 300, 50);
  core::Table1Evaluator evaluator(campaign, data);

  Table table({"model", "train (s)", "a. max", "b. periodic",
               "d. burst det", "e. burst height", "h. empty freq"});
  auto add_row = [&](const core::Table1Row& row, double seconds) {
    table.add_row({row.method, Table::fmt(seconds, 1),
                   Table::fmt(row.max_constraint),
                   Table::fmt(row.periodic_constraint),
                   Table::fmt(row.burst_detection),
                   Table::fmt(row.burst_height),
                   Table::fmt(row.empty_queue_freq)});
  };

  const int epochs = static_cast<int>(
      bench::env_int("FMNET_EPOCHS", fast_mode() ? 4 : 25));

  {
    impute::AltTrainConfig cfg;
    cfg.epochs = epochs;
    impute::PointwiseMlpImputer mlp(32, cfg);
    Stopwatch sw;
    mlp.train(data.split.train);
    const double s = sw.elapsed_seconds();
    add_row(evaluator.evaluate(mlp), s);
  }
  {
    impute::AltTrainConfig cfg;
    cfg.epochs = epochs;
    impute::BiGruImputer gru(16, cfg);
    Stopwatch sw;
    gru.train(data.split.train);
    const double s = sw.elapsed_seconds();
    add_row(evaluator.evaluate(gru), s);
  }
  {
    auto cfg = bench::default_training(false);
    cfg.epochs = epochs;
    impute::TransformerImputer tr(bench::default_model(), cfg);
    Stopwatch sw;
    tr.train(data.split.train);
    const double s = sw.elapsed_seconds();
    add_row(evaluator.evaluate(tr), s);
  }
  {
    impute::RateImputerConfig cfg;
    cfg.model = bench::default_model();
    cfg.epochs = epochs;
    impute::PhysicsRateImputer rate(cfg);
    Stopwatch sw;
    rate.train(data.split.train);
    const double s = sw.elapsed_seconds();
    add_row(evaluator.evaluate(rate), s);
  }

  table.print(std::cout);
  std::printf(
      "\nreading: the pointwise MLP is structurally unable to place "
      "within-interval detail (its output is constant across each 50 ms "
      "interval); temporal models can; the rate network additionally "
      "guarantees non-negativity and bounded slopes by construction.\n");
  return 0;
}
