// Architecture ablation (paper §2.2: "We find transformers to be
// particularly suitable models for telemetry imputation"): the same data
// and loss across four model families —
//   * pointwise MLP (no temporal context at all),
//   * bidirectional GRU (recurrent context),
//   * transformer encoder (attention context; the paper's choice),
//   * physics-informed rate transformer (§5's intermediate-variable idea:
//     predict net inflow, derive queues through the Lindley recursion).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace fmnet;

int main() {
  bench::ScopedMetricsDump metrics_dump;
  bench::print_header(
      "Architecture ablation — MLP vs BiGRU vs Transformer vs RateNet");

  core::Scenario s = bench::default_scenario(42, 5'000);
  s.train.epochs = static_cast<int>(
      bench::env_int("FMNET_EPOCHS", fast_mode() ? 4 : 25));

  core::Engine engine;
  const core::Campaign campaign = engine.campaign(s.campaign);
  const core::PreparedData data = engine.prepare(s, campaign);
  core::Table1Evaluator evaluator(campaign, data);

  Table table({"model", "train (s)", "a. max", "b. periodic",
               "d. burst det", "e. burst height", "h. empty freq"});

  for (const char* method : {"mlp", "gru", "transformer", "rate"}) {
    Stopwatch sw;
    const auto built = engine.fit_method(s, method, data);
    const double seconds = sw.elapsed_seconds();
    const core::Table1Row row = evaluator.evaluate(*built.imputer);
    table.add_row({row.method, Table::fmt(seconds, 1),
                   Table::fmt(row.max_constraint),
                   Table::fmt(row.periodic_constraint),
                   Table::fmt(row.burst_detection),
                   Table::fmt(row.burst_height),
                   Table::fmt(row.empty_queue_freq)});
  }

  table.print(std::cout);
  std::printf(
      "\nreading: the pointwise MLP is structurally unable to place "
      "within-interval detail (its output is constant across each 50 ms "
      "interval); temporal models can; the rate network additionally "
      "guarantees non-negativity and bounded slopes by construction.\n");
  return 0;
}
