// Reproduces Table 1: downstream-task performance of the four imputation
// methods — IterativeImputer, Transformer (EMD loss), Transformer+KAL, and
// Transformer+KAL+CEM — over a websearch+incast campaign, 50 ms -> 1 ms
// (50x granularity gain).
//
// Expected shape (paper): IterImputer worst nearly everywhere; KAL improves
// consistency rows a-c and most burst tasks; CEM nullifies rows a-c exactly
// and keeps (or slightly trades) burst-task accuracy. Also reports the mean
// CEM correction time per 50 ms interval (paper: 1.47 s per 50 ms of
// transformer output with Z3; our specialised engine is much faster, the
// point is CEM ≪ FM-alone which never terminates — see
// fm_alone_scalability).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "impute/knowledge_imputer.h"
#include "impute/registry.h"
#include "util/stopwatch.h"

using namespace fmnet;

int main() {
  bench::ScopedMetricsDump metrics_dump;
  bench::print_header(
      "Table 1 — downstream task errors of the four imputation methods");

  // Headline run: train longer than the multi-model ablations unless the
  // user pinned FMNET_EPOCHS.
  core::Scenario s = bench::default_scenario(42);
  if (std::getenv("FMNET_EPOCHS") == nullptr && !fast_mode()) {
    s.train.epochs = 45;
  }

  core::Engine engine;
  const core::Campaign campaign = engine.campaign(s.campaign);
  const core::PreparedData data = engine.prepare(s, campaign);
  std::printf("campaign: %d ports, %lld-pkt shared buffer, %zu ms, "
              "%zu train / %zu test windows\n",
              campaign.switch_config.num_ports,
              static_cast<long long>(campaign.switch_config.buffer_size),
              campaign.gt.num_ms(), data.split.train.size(),
              data.split.test.size());
  std::printf("granularity gain: %zu ms -> 1 ms (%zux)\n\n",
              data.dataset_config.factor, data.dataset_config.factor);

  core::Table1Evaluator evaluator(campaign, data);
  std::vector<core::Table1Row> rows;

  auto fit_timed = [&](const char* method) {
    Stopwatch sw;
    auto built = engine.fit_method(s, method, data);
    std::printf("[%s] fitted in %.1fs\n", built.imputer->name().c_str(),
                sw.elapsed_seconds());
    return built;
  };

  // 1. IterativeImputer.
  {
    auto iter = fit_timed("iterative");
    Stopwatch sw;
    rows.push_back(evaluator.evaluate(*iter.imputer));
    std::printf("[IterImputer] evaluated in %.1fs\n", sw.elapsed_seconds());
  }

  // 2. Transformer (EMD loss, no knowledge).
  {
    auto plain = fit_timed("transformer");
    rows.push_back(evaluator.evaluate(*plain.imputer));
  }

  // 3. Transformer + KAL, and 4. + CEM wrapped around the same fit.
  auto kal = fit_timed("transformer+kal");
  rows.push_back(evaluator.evaluate(*kal.imputer));

  impute::MethodParams params;
  params.model = s.model;
  params.train = s.train;
  params.cem = s.cem;
  const auto full_built = impute::Registry::with_cem(kal, params);
  auto& full =
      dynamic_cast<impute::KnowledgeAugmentedImputer&>(*full_built.imputer);
  rows.push_back(evaluator.evaluate(full));

  std::printf("\n");
  core::print_table1(rows, std::cout);

  const double per_window_ms =
      full.cem_calls() > 0
          ? 1e3 * full.total_cem_seconds() /
                (static_cast<double>(full.cem_calls()) *
                 (300.0 / static_cast<double>(data.dataset_config.factor)))
          : 0.0;
  std::printf(
      "\nCEM: %lld windows corrected, %.3f ms per 50 ms interval "
      "(paper reports 1.47 s with Z3; shape claim: CEM is fast enough to "
      "run inline, unlike FM-alone), %lld infeasible\n",
      static_cast<long long>(full.cem_calls()), per_window_ms,
      static_cast<long long>(full.infeasible_windows()));

  // Shape assertions printed for EXPERIMENTS.md.
  const auto& iter_row = rows[0];
  const auto& tr = rows[1];
  const auto& tr_kal = rows[2];
  const auto& tr_full = rows[3];
  std::printf("\nshape checks:\n");
  std::printf("  CEM nullifies a-c: %s\n",
              (tr_full.max_constraint < 1e-5 &&
               tr_full.periodic_constraint < 1e-5 &&
               tr_full.sent_constraint < 1e-5)
                  ? "PASS"
                  : "FAIL");
  std::printf("  KAL improves sent-count consistency vs plain: %s\n",
              tr_kal.sent_constraint <= tr.sent_constraint + 1e-9 ? "PASS"
                                                                  : "FAIL");
  const double iter_score = iter_row.burst_detection + iter_row.burst_height +
                            iter_row.empty_queue_freq;
  const double full_score = tr_full.burst_detection + tr_full.burst_height +
                            tr_full.empty_queue_freq;
  std::printf("  full system beats IterImputer on burst tasks: %s\n",
              full_score < iter_score ? "PASS" : "FAIL");
  return 0;
}
