// Ablation of the KAL design (paper §3.1 / §4): how much of the consistency
// gain comes from the augmented-Lagrangian penalty, and how the penalty
// weight μ steers the trade-off the paper observes ("KAL encourages higher
// values when bursts occur, the transformer can end up overshooting,
// leading to an increase in max-constraint error when only KAL is
// incorporated").
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "impute/registry.h"
#include "util/table.h"

using namespace fmnet;

int main() {
  bench::ScopedMetricsDump metrics_dump;
  bench::print_header("Ablation — KAL penalty weight and CEM interaction");

  const core::Scenario s = bench::default_scenario(42, 5'000);
  core::Engine engine;
  const core::Campaign campaign = engine.campaign(s.campaign);
  const core::PreparedData data = engine.prepare(s, campaign);
  core::Table1Evaluator evaluator(campaign, data);

  Table table({"variant", "a. max", "b. periodic", "c. sent",
               "d. burst det", "e. burst height"});

  struct Variant {
    const char* label;
    bool use_kal;
    float mu;
    float weight;
    bool with_cem;
  };
  const std::vector<Variant> variants = {
      {"no KAL", false, 0.5f, 1.0f, false},
      {"KAL mu=0.1", true, 0.1f, 1.0f, false},
      {"KAL mu=0.5", true, 0.5f, 1.0f, false},
      {"KAL mu=2.0", true, 2.0f, 1.0f, false},
      {"KAL half-weight", true, 0.5f, 0.5f, false},
      {"KAL mu=0.5 + CEM", true, 0.5f, 1.0f, true},
  };

  for (const auto& v : variants) {
    core::Scenario sv = s;
    sv.train.kal_mu = v.mu;
    sv.train.kal_weight = v.weight;
    auto built = engine.fit_method(
        sv, v.use_kal ? "transformer+kal" : "transformer", data);
    if (v.with_cem) {
      impute::MethodParams params;
      params.cem = sv.cem;
      built = impute::Registry::with_cem(built, params);
    }
    const core::Table1Row row = evaluator.evaluate(*built.imputer);
    table.add_row({v.label, Table::fmt(row.max_constraint),
                   Table::fmt(row.periodic_constraint),
                   Table::fmt(row.sent_constraint),
                   Table::fmt(row.burst_detection),
                   Table::fmt(row.burst_height)});
  }
  table.print(std::cout);
  std::printf(
      "\nreading: KAL alone reduces but cannot nullify a-c (and can "
      "overshoot the max when pushed hard); adding CEM nullifies them — "
      "the paper's argument for needing both.\n");
  return 0;
}
