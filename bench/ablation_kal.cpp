// Ablation of the KAL design (paper §3.1 / §4): how much of the consistency
// gain comes from the augmented-Lagrangian penalty, and how the penalty
// weight μ steers the trade-off the paper observes ("KAL encourages higher
// values when bursts occur, the transformer can end up overshooting,
// leading to an increase in max-constraint error when only KAL is
// incorporated").
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "impute/knowledge_imputer.h"
#include "impute/transformer_imputer.h"
#include "util/table.h"

using namespace fmnet;

int main() {
  bench::ScopedMetricsDump metrics_dump;
  bench::print_header("Ablation — KAL penalty weight and CEM interaction");

  const core::Campaign campaign =
      core::run_campaign(bench::default_campaign(42, 5'000));
  const core::PreparedData data = core::prepare_data(campaign, 300, 50);
  core::Table1Evaluator evaluator(campaign, data);

  Table table({"variant", "a. max", "b. periodic", "c. sent",
               "d. burst det", "e. burst height"});

  struct Variant {
    const char* label;
    bool use_kal;
    float mu;
    float weight;
    bool with_cem;
  };
  const std::vector<Variant> variants = {
      {"no KAL", false, 0.5f, 1.0f, false},
      {"KAL mu=0.1", true, 0.1f, 1.0f, false},
      {"KAL mu=0.5", true, 0.5f, 1.0f, false},
      {"KAL mu=2.0", true, 2.0f, 1.0f, false},
      {"KAL half-weight", true, 0.5f, 0.5f, false},
      {"KAL mu=0.5 + CEM", true, 0.5f, 1.0f, true},
  };

  for (const auto& v : variants) {
    auto cfg = bench::default_training(v.use_kal);
    cfg.kal_mu = v.mu;
    cfg.kal_weight = v.weight;
    auto model = std::make_shared<impute::TransformerImputer>(
        bench::default_model(), cfg);
    model->train(data.split.train);

    core::Table1Row row;
    if (v.with_cem) {
      impute::KnowledgeAugmentedImputer full(model);
      row = evaluator.evaluate(full);
    } else {
      row = evaluator.evaluate(*model);
    }
    table.add_row({v.label, Table::fmt(row.max_constraint),
                   Table::fmt(row.periodic_constraint),
                   Table::fmt(row.sent_constraint),
                   Table::fmt(row.burst_detection),
                   Table::fmt(row.burst_height)});
  }
  table.print(std::cout);
  std::printf(
      "\nreading: KAL alone reduces but cannot nullify a-c (and can "
      "overshoot the max when pushed hard); adding CEM nullifies them — "
      "the paper's argument for needing both.\n");
  return 0;
}
