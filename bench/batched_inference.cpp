// Batched + quantised inference throughput: windows/s of the per-window
// serving loop vs stacking B windows into one [B, T, C] forward
// (impute::TransformerImputer::impute_batch), and the int8 Linear path on
// top of that. Also asserts, with exit status, the two correctness
// contracts the CI gate leans on:
//
//  * batched fp32 == per-window loop bit-for-bit (any B);
//  * the int8 EMD delta vs fp32 stays small (the bound itself is pinned in
//    tests/inference_test.cpp and gated in CI via the exported gauge).
//
// Gauges (best-of-run via set_max; the deltas via set):
//   bench.batched.loop.win_per_s    per-window fp32 loop
//   bench.batched.b4.win_per_s      batched fp32, B=4
//   bench.batched.b16.win_per_s     batched fp32, B=16
//   bench.batched.int8.win_per_s    batched int8, B=16
//   bench.batched.speedup_b16       b16 / loop (within this run)
//   bench.batched.int8_emd_delta    mean per-window EMD(int8, fp32)
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace fmnet;

namespace {

// Synthetic coarse-feature windows in normalised units (qlen_scale 1, so
// model outputs compare directly). An untrained model is fine for
// throughput and quantisation-error purposes: the weights are random but
// fixed by the seed, and both paths see the same ones.
std::vector<telemetry::ImputationExample> make_windows(std::size_t count,
                                                       std::size_t window) {
  fmnet::Rng rng(123);
  std::vector<telemetry::ImputationExample> out(count);
  for (auto& ex : out) {
    ex.window = window;
    ex.qlen_scale = 1.0;
    ex.count_scale = 1.0;
    ex.features.resize(window * telemetry::kNumInputChannels);
    for (auto& f : ex.features) {
      f = static_cast<float>(rng.uniform(0.0, 1.0));
    }
    ex.target.assign(window, 0.0f);  // never read by impute
  }
  return out;
}

double mean_emd_delta(const std::vector<std::vector<double>>& a,
                      const std::vector<std::vector<double>>& b) {
  double total = 0.0;
  for (std::size_t w = 0; w < a.size(); ++w) {
    double cdf = 0.0;
    double acc = 0.0;
    for (std::size_t t = 0; t < a[w].size(); ++t) {
      cdf += a[w][t] - b[w][t];
      acc += std::fabs(cdf);
    }
    total += acc / static_cast<double>(a[w].size());
  }
  return total / static_cast<double>(a.size());
}

}  // namespace

int main() {
  bench::ScopedMetricsDump metrics_dump;
  bench::print_header("Batched + quantised transformer inference");

  const bool fast = fast_mode();
  const std::size_t window = fast ? 90 : 300;   // 6 coarse intervals
  const std::size_t num_windows = fast ? 32 : 64;
  const auto reps =
      static_cast<std::size_t>(bench::env_int("FMNET_BATCH_REPS",
                                              fast ? 3 : 5));

  impute::TransformerImputer imputer(bench::default_model(),
                                     bench::default_training(false));
  const auto windows = make_windows(num_windows, window);

  // ---- correctness: batched fp32 must equal the loop bit-for-bit --------
  std::vector<std::vector<double>> loop_out;
  loop_out.reserve(num_windows);
  for (const auto& ex : windows) loop_out.push_back(imputer.impute(ex));
  for (const std::size_t b : {std::size_t{4}, std::size_t{16}}) {
    for (std::size_t begin = 0; begin < num_windows; begin += b) {
      const std::vector<telemetry::ImputationExample> chunk(
          windows.begin() + static_cast<std::ptrdiff_t>(begin),
          windows.begin() + static_cast<std::ptrdiff_t>(begin + b));
      const auto batched = imputer.impute_batch(chunk);
      for (std::size_t i = 0; i < b; ++i) {
        if (batched[i] != loop_out[begin + i]) {
          std::fprintf(stderr,
                       "FAIL: batched (B=%zu) forward diverges from the "
                       "per-window loop at window %zu\n",
                       b, begin + i);
          return 1;
        }
      }
    }
  }

  // ---- throughput -------------------------------------------------------
  auto time_windows_per_s = [&](std::size_t batch) {
    fmnet::Stopwatch clock;
    for (std::size_t r = 0; r < reps; ++r) {
      if (batch <= 1) {
        for (const auto& ex : windows) (void)imputer.impute(ex);
      } else {
        for (std::size_t begin = 0; begin < num_windows; begin += batch) {
          const std::vector<telemetry::ImputationExample> chunk(
              windows.begin() + static_cast<std::ptrdiff_t>(begin),
              windows.begin() + static_cast<std::ptrdiff_t>(begin + batch));
          (void)imputer.impute_batch(chunk);
        }
      }
    }
    return static_cast<double>(reps * num_windows) /
           clock.elapsed_seconds();
  };

  const double loop_wps = time_windows_per_s(1);
  const double b4_wps = time_windows_per_s(4);
  const double b16_wps = time_windows_per_s(16);

  imputer.set_infer_config({/*quantize_int8=*/true});
  const double int8_wps = time_windows_per_s(16);
  const auto int8_out = imputer.impute_batch(windows);
  const double emd_delta = mean_emd_delta(int8_out, loop_out);
  imputer.set_infer_config({/*quantize_int8=*/false});

  const double speedup_b16 = b16_wps / loop_wps;

  auto& reg = obs::Registry::global();
  reg.gauge("bench.batched.loop.win_per_s").set_max(loop_wps);
  reg.gauge("bench.batched.b4.win_per_s").set_max(b4_wps);
  reg.gauge("bench.batched.b16.win_per_s").set_max(b16_wps);
  reg.gauge("bench.batched.int8.win_per_s").set_max(int8_wps);
  reg.gauge("bench.batched.speedup_b16").set(speedup_b16);
  reg.gauge("bench.batched.int8_emd_delta").set(emd_delta);

  Table table({"path", "windows/s", "vs loop"});
  table.add_row({"per-window loop (fp32)", Table::fmt(loop_wps), "1.00x"});
  table.add_row({"batched B=4 (fp32)", Table::fmt(b4_wps),
                 Table::fmt(b4_wps / loop_wps) + "x"});
  table.add_row({"batched B=16 (fp32)", Table::fmt(b16_wps),
                 Table::fmt(speedup_b16) + "x"});
  table.add_row({"batched B=16 (int8)", Table::fmt(int8_wps),
                 Table::fmt(int8_wps / loop_wps) + "x"});
  table.print(std::cout);
  std::printf("\nint8 EMD delta vs fp32 (normalised units): %.6f\n",
              emd_delta);
  std::printf("shape check — batched fp32 bit-identical to the loop: PASS\n");
  return 0;
}
