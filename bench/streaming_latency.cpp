// Real-time feasibility (paper §5: "making the system work under strict
// timing requirements would be particularly useful"): streams the campaign
// interval-by-interval through the full imputer and reports per-interval
// latency percentiles against the real-time budget (one coarse interval,
// i.e. 50 ms of wall clock per 50 ms of telemetry).
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "impute/knowledge_imputer.h"
#include "impute/streaming.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/stats.h"
#include "util/table.h"

using namespace fmnet;

int main() {
  bench::ScopedMetricsDump metrics_dump;
  bench::print_header(
      "Streaming imputation latency vs the 50 ms real-time budget");

  const core::Scenario s = bench::default_scenario(42, 5'000);
  core::Engine engine;
  const core::Campaign campaign = engine.campaign(s.campaign);
  const core::PreparedData data = engine.prepare(s, campaign);

  const auto full = engine.fit_method(s, "transformer+kal+cem", data);

  // The wall clock is injected explicitly (the same seam serve_test and
  // fmnet_cli serve fill with a VirtualClock for deterministic latencies).
  const util::Clock& clk = util::Clock::wall();
  impute::StreamingImputer stream(
      full.imputer, /*window_intervals=*/6, data.dataset_config.factor,
      data.dataset_config.qlen_scale, data.dataset_config.count_scale, &clk);

  // Stream the busiest queue's telemetry.
  std::size_t busiest = 0;
  double mass = -1.0;
  for (std::size_t q = 0; q < data.coarse.max_qlen.size(); ++q) {
    if (data.coarse.max_qlen[q].sum() > mass) {
      mass = data.coarse.max_qlen[q].sum();
      busiest = q;
    }
  }
  const std::size_t port =
      busiest / static_cast<std::size_t>(
                    campaign.switch_config.queues_per_port);

  std::vector<double> latencies_ms;
  for (std::size_t k = 0; k < data.coarse.num_intervals(); ++k) {
    impute::CoarseIntervalUpdate u;
    u.periodic_qlen = data.coarse.periodic_qlen[busiest][k];
    u.max_qlen = data.coarse.max_qlen[busiest][k];
    u.port_sent = data.coarse.snmp_sent[port][k];
    u.port_dropped = data.coarse.snmp_dropped[port][k];
    const auto out = stream.push(u);
    if (out.ready) latencies_ms.push_back(out.latency_seconds * 1e3);
  }

  // Batched mode: every queue of the switch streams concurrently and each
  // tick's ready windows go through one stacked forward
  // (impute::BatchedStreamingImputer). Per-window latency is the amortised
  // batch cost, recorded in the same streaming.latency_ms histogram, so
  // the percentiles below and the exported fmnet.metrics.v1 document stay
  // per-window in both modes.
  const std::size_t num_queues = data.coarse.max_qlen.size();
  const auto queues_per_port =
      static_cast<std::size_t>(campaign.switch_config.queues_per_port);
  impute::BatchedStreamingImputer batched_stream(
      full.imputer, num_queues, /*window_intervals=*/6,
      data.dataset_config.factor, data.dataset_config.qlen_scale,
      data.dataset_config.count_scale, &clk);
  std::vector<double> batched_ms;
  const double batched_t0 = clk.now();
  for (std::size_t k = 0; k < data.coarse.num_intervals(); ++k) {
    std::vector<impute::CoarseIntervalUpdate> updates(num_queues);
    for (std::size_t q = 0; q < num_queues; ++q) {
      updates[q].periodic_qlen = data.coarse.periodic_qlen[q][k];
      updates[q].max_qlen = data.coarse.max_qlen[q][k];
      updates[q].port_sent = data.coarse.snmp_sent[q / queues_per_port][k];
      updates[q].port_dropped =
          data.coarse.snmp_dropped[q / queues_per_port][k];
    }
    for (const auto& out : batched_stream.push(updates)) {
      if (out.ready) batched_ms.push_back(out.latency_seconds * 1e3);
    }
  }
  const double batched_win_per_s =
      static_cast<double>(batched_ms.size()) / (clk.now() - batched_t0);

  auto& reg = obs::Registry::global();
  reg.gauge("bench.streaming.single.p99_ms")
      .set(percentile(latencies_ms, 99));
  reg.gauge("bench.streaming.batched.p99_ms").set(percentile(batched_ms, 99));
  reg.gauge("bench.streaming.batched.win_per_s").set_max(batched_win_per_s);

  const double budget_ms =
      static_cast<double>(data.dataset_config.factor);  // 50 ms of telemetry
  Table table({"metric", "value (ms)"});
  table.add_row({"intervals streamed", std::to_string(latencies_ms.size())});
  table.add_row({"p50 latency", Table::fmt(percentile(latencies_ms, 50))});
  table.add_row({"p99 latency", Table::fmt(percentile(latencies_ms, 99))});
  table.add_row({"max latency", Table::fmt(percentile(latencies_ms, 100))});
  table.add_row({"batched sessions", std::to_string(num_queues)});
  table.add_row({"batched windows", std::to_string(batched_ms.size())});
  table.add_row(
      {"batched p50 latency/window", Table::fmt(percentile(batched_ms, 50))});
  table.add_row(
      {"batched p99 latency/window", Table::fmt(percentile(batched_ms, 99))});
  table.add_row({"real-time budget", Table::fmt(budget_ms)});
  table.print(std::cout);

  const bool realtime = percentile(latencies_ms, 99) < budget_ms;
  const bool batched_realtime = percentile(batched_ms, 99) < budget_ms;
  std::printf(
      "\nshape check — p99 per-interval imputation latency fits inside one "
      "coarse interval (real-time capable): %s\n",
      realtime ? "PASS" : "FAIL");
  std::printf(
      "shape check — batched mode p99 per-window latency fits the budget "
      "(%zu sessions per tick): %s\n",
      num_queues, batched_realtime ? "PASS" : "FAIL");
  std::printf(
      "(the paper's Z3-based CEM at 1.47 s per 50 ms would miss this "
      "budget by ~30x; the specialised exact repair makes the §5 real-time "
      "direction reachable.)\n");
  return 0;
}
