// Reproduces the §2.3 scalability claim: "Z3 successfully generated imputed
// queue lengths for simple scenarios in a few minutes, but could not handle
// more realistic scenarios in even 24 hours" — the per-time-step FM model's
// search space explodes with the horizon because indistinguishable
// interleavings multiply.
//
// We sweep the horizon of the per-slot switch model, recording solve time
// and search size under a budget, and contrast it with CEM on the
// equivalent window — the paper's motivation for the hybrid design.
#include <cstdio>

#include "bench_common.h"
#include "impute/cem.h"
#include "impute/fm_model.h"
#include "util/rng.h"
#include "util/table.h"

#include <iostream>

using namespace fmnet;

int main() {
  bench::ScopedMetricsDump metrics_dump;
  bench::print_header(
      "FM-alone scalability (paper §2.3) vs CEM on the same window");

  const double budget_seconds = fast_mode() ? 5.0 : 60.0;
  impute::FmSwitchModelConfig cfg;
  cfg.num_queues = 2;
  cfg.buffer_size = 16;
  cfg.max_ingress_per_slot = 3;

  Table table({"horizon (slots)", "status", "solve time (s)", "decisions",
               "CEM time (s) same horizon"});

  const std::vector<std::int64_t> horizons =
      fast_mode() ? std::vector<std::int64_t>{8, 16, 24}
                  : std::vector<std::int64_t>{8, 16, 24, 32, 48, 64, 96};
  bool hit_wall = false;
  for (const std::int64_t horizon : horizons) {
    cfg.slots_per_interval = horizon / 2;  // two intervals per instance
    impute::FmSwitchModel model(cfg);

    // Ground-truth arrival schedule with a fan-in burst, so the instance
    // is non-trivially constrained.
    fmnet::Rng rng(1234 + static_cast<std::uint64_t>(horizon));
    std::vector<std::vector<std::int64_t>> arrivals(
        2, std::vector<std::int64_t>(static_cast<std::size_t>(horizon), 0));
    for (std::int64_t t = 0; t < horizon; ++t) {
      arrivals[0][t] = rng.uniform_int(0, 3);
      arrivals[1][t] = rng.bernoulli(0.3) ? 1 : 0;
    }
    const auto m = model.measure(arrivals);

    smt::Budget budget;
    budget.max_seconds = budget_seconds;
    const auto r = model.impute(m, budget);
    const char* status = r.status == smt::Status::kSat       ? "SAT"
                         : r.status == smt::Status::kUnsat   ? "UNSAT"
                         : r.status == smt::Status::kUnknown ? "TIMEOUT"
                                                             : "?";
    hit_wall = hit_wall || r.status == smt::Status::kUnknown;

    // CEM on the "same" amount of telemetry: a window with the same number
    // of intervals and fine steps, from the measured trace.
    impute::CemConstraints cc;
    cc.coarse_factor = cfg.slots_per_interval;
    for (std::size_t k = 0; k < m.num_intervals(); ++k) {
      cc.window_max.push_back(m.queue_max[0][k]);
      cc.port_sent.push_back(
          std::min<std::int64_t>(cfg.slots_per_interval, m.sent[k]));
      cc.sample_idx.push_back(static_cast<std::int64_t>(k) *
                              cfg.slots_per_interval);
      cc.sample_val.push_back(m.queue_sample[0][k]);
    }
    std::vector<double> rough(static_cast<std::size_t>(horizon), 1.0);
    impute::ConstraintEnforcementModule cem;
    const auto cem_r = cem.correct(rough, cc);

    table.add_row({std::to_string(horizon), status,
                   Table::fmt(r.seconds, 3), std::to_string(r.decisions),
                   Table::fmt(cem_r.seconds, 6)});
  }
  table.print(std::cout);
  std::printf(
      "\nshape check — FM-alone hits the %.0fs budget while CEM stays "
      "sub-millisecond: %s\n",
      budget_seconds, hit_wall ? "PASS" : "(instance solved within budget; "
                                          "increase horizon for the wall)");
  return 0;
}
