// Shared setup for the paper-reproduction benches: default campaign and
// model/training configurations, scaled down when FMNET_FAST=1 so the whole
// bench suite smoke-runs in seconds.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/engine.h"
#include "core/evaluation.h"
#include "core/pipeline.h"
#include "core/scenario.h"
#include "impute/transformer_imputer.h"
#include "obs/export.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace fmnet::bench {

/// Declared first in main so its destructor runs last: exports the run's
/// metrics (FMNET_METRICS=<path> JSON, FMNET_METRICS_TABLE=1 stderr table)
/// after the bench finishes. Every bench emits the same
/// "fmnet.metrics.v1" schema, so CI can archive BENCH_*.json artifacts
/// uniformly.
struct ScopedMetricsDump {
  ScopedMetricsDump() = default;
  ScopedMetricsDump(const ScopedMetricsDump&) = delete;
  ScopedMetricsDump& operator=(const ScopedMetricsDump&) = delete;
  ~ScopedMetricsDump() { obs::finalize(); }
};

/// Integer environment override (FMNET_EPOCHS, FMNET_TOTAL_MS) so bench
/// scale can be tuned without rebuilding; falls back to `fallback`.
inline std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  return std::atoll(v);
}

/// Paper-scale defaults (shrunk in fast mode): 8-port switch, 90 slots/ms,
/// multi-second campaign at 1 ms granularity, 50 ms telemetry.
/// `full_ms` lets multi-model benches choose a shorter campaign than the
/// headline Table-1 run; FMNET_TOTAL_MS overrides either.
inline core::CampaignConfig default_campaign(std::uint64_t seed = 42,
                                             std::int64_t full_ms = 10'000) {
  core::CampaignConfig cfg;
  cfg.seed = seed;
  if (fast_mode()) {
    cfg.num_ports = 4;
    cfg.buffer_size = 300;
    cfg.slots_per_ms = 30;
    cfg.total_ms = 1'200;
  } else {
    cfg.num_ports = 8;
    cfg.buffer_size = 600;
    cfg.slots_per_ms = 90;
    cfg.total_ms = full_ms;
  }
  cfg.total_ms = env_int("FMNET_TOTAL_MS", cfg.total_ms);
  // Generate as independent 600 ms sub-campaigns so simulation parallelises
  // across FMNET_THREADS; the result is a pure function of (seed, shard_ms)
  // regardless of thread count. FMNET_SHARD_MS=0 restores the contiguous
  // single-seed run.
  cfg.shard_ms = env_int("FMNET_SHARD_MS", 600);
  return cfg;
}

inline nn::TransformerConfig default_model() {
  nn::TransformerConfig cfg;
  cfg.input_channels = telemetry::kNumInputChannels;
  cfg.d_model = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  cfg.d_ff = 32;
  cfg.max_seq_len = 512;
  return cfg;
}

inline impute::TrainConfig default_training(bool use_kal,
                                            std::uint64_t seed = 1) {
  impute::TrainConfig cfg;
  cfg.epochs = static_cast<int>(env_int("FMNET_EPOCHS",
                                        fast_mode() ? 4 : 30));
  cfg.batch_size = 8;
  cfg.lr = 3e-3f;
  cfg.use_kal = use_kal;
  cfg.seed = seed;
  return cfg;
}

/// The bench defaults bundled as a Scenario, ready for core::Engine: the
/// default campaign plus the default model/training hyper-parameters
/// (use_kal is selected per method by the imputer registry, not here).
/// Callers set `methods` themselves. With FMNET_ARTIFACT_DIR set, bench
/// re-runs then serve simulation and transformer training from the
/// artifact cache.
inline core::Scenario default_scenario(std::uint64_t seed = 42,
                                       std::int64_t full_ms = 10'000) {
  core::Scenario s;
  s.name = "bench";
  s.campaign = default_campaign(seed, full_ms);
  s.model = default_model();
  s.train = default_training(/*use_kal=*/false);
  return s;
}

inline void print_header(const char* title) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title);
  std::printf("(deterministic seeds; FMNET_FAST=%s; FMNET_THREADS=%zu)\n",
              fast_mode() ? "1 (smoke scale)" : "0 (paper scale)",
              util::ThreadPool::configured_threads());
  std::printf("==========================================================\n");
}

/// Renders a small ASCII sparkline of a series (for figure benches).
inline void ascii_plot(const char* label, const std::vector<double>& v,
                       double v_max) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  std::printf("%-22s|", label);
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double frac = v_max > 0 ? v[i] / v_max : 0.0;
    const int level =
        std::min(7, static_cast<int>(frac * 7.999));
    std::printf("%s", kLevels[std::max(0, level)]);
  }
  std::printf("|\n");
}

}  // namespace fmnet::bench
