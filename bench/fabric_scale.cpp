// Fabric-scale campaign throughput: the per-switch phase (prepare + train
// + evaluate for every switch of a leaf–spine fabric) sharded over 1/2/4/8
// pool lanes, plus cold-vs-warm end-to-end runs through the per-switch
// artifact cache. Doubles as a correctness gate: the bench exits non-zero
// unless every lane count produces bit-identical per-switch tables and the
// warm run serves every switch's ground truth from the store.
//
// Gauges (best-of-run via set_max for throughputs; ratios via set):
//   bench.fabric.lanes{1,2,4,8}.sw_per_s   per-switch phase, switches/s
//   bench.fabric.speedup_8v1               lanes8 / lanes1 wall-clock
//   bench.fabric.speedup_best              best lane count / lanes1
//   bench.fabric.cold_s / warm_s           end-to-end run seconds
//   bench.fabric.warm_speedup              cold_s / warm_s
//   bench.fabric.cores                     hardware threads of the machine
//                                          (lane speedups cannot exceed it)
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace fmnet;

namespace {

std::string results_to_string(
    const std::vector<core::FabricSwitchResult>& results) {
  std::ostringstream os;
  for (const auto& r : results) {
    os << "== " << r.name << " ==\n";
    core::print_table1(r.rows, os);
  }
  return os.str();
}

/// The bench fabric: 8 leaves x 4 spines at paper scale (4 x 2 in fast
/// mode), checkpointable transformer+kal per switch so the warm run
/// restores per-switch weights instead of training.
core::Scenario fabric_scenario() {
  const bool fast = fast_mode();
  core::Scenario s;
  s.name = "bench-fabric";
  s.fabric.leaves = fast ? 4 : 8;
  s.fabric.spines = fast ? 2 : 4;
  s.fabric.hosts_per_leaf = fast ? 2 : 4;
  s.campaign.seed = 42;
  s.campaign.buffer_size = fast ? 300 : 600;
  s.campaign.slots_per_ms = fast ? 30 : 90;
  s.campaign.total_ms = bench::env_int("FMNET_TOTAL_MS", fast ? 600 : 3'000);
  s.campaign.shard_ms = 0;  // the fabric simulation is one coupled run
  s.window_ms = fast ? 150 : 300;
  s.factor = 50;
  s.model = bench::default_model();
  s.train = bench::default_training(/*use_kal=*/false);
  s.train.epochs = static_cast<int>(bench::env_int("FMNET_EPOCHS",
                                                   fast ? 2 : 6));
  s.methods = {"transformer+kal"};
  return s;
}

}  // namespace

int main() {
  bench::ScopedMetricsDump metrics_dump;
  bench::print_header("Fabric-scale campaigns: per-switch sharding");

  const core::Scenario s = fabric_scenario();
  const auto n = static_cast<double>(s.fabric.num_switches());
  auto& reg = obs::Registry::global();
  const unsigned cores = std::thread::hardware_concurrency();
  reg.gauge("bench.fabric.cores").set(static_cast<double>(cores));
  std::printf("fabric: %lld leaves x %lld spines, %lld ms campaign, "
              "%u hardware threads\n\n",
              static_cast<long long>(s.fabric.leaves),
              static_cast<long long>(s.fabric.spines),
              static_cast<long long>(s.campaign.total_ms), cores);

  // Simulate the coupled fabric once (store disabled): the lane sweep
  // times ONLY the per-switch phase over these campaigns.
  core::Engine sim_engine{core::ArtifactStore()};
  const auto campaigns = sim_engine.fabric_campaigns(s);

  // ---- lane sweep over the per-switch phase -----------------------------
  Table table({"lanes", "switches/s", "vs 1 lane"});
  std::string reference;
  double sw_per_s_1 = 0.0;
  double best_speedup = 0.0;
  double speedup_8v1 = 0.0;
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}, std::size_t{8}}) {
    util::ThreadPool pool(lanes);
    core::Engine engine{core::ArtifactStore(), &pool};
    fmnet::Stopwatch clock;
    const auto results = engine.run_fabric_switches(s, campaigns);
    const double sw_per_s = n / clock.elapsed_seconds();
    const std::string flat = results_to_string(results);
    if (reference.empty()) {
      reference = flat;
      sw_per_s_1 = sw_per_s;
    } else if (flat != reference) {
      std::fprintf(stderr,
                   "FAIL: per-switch results at %zu lanes diverge from the "
                   "1-lane run\n",
                   lanes);
      return 1;
    }
    const double speedup = sw_per_s / sw_per_s_1;
    best_speedup = std::max(best_speedup, speedup);
    if (lanes == 8) speedup_8v1 = speedup;
    reg.gauge("bench.fabric.lanes" + std::to_string(lanes) + ".sw_per_s")
        .set_max(sw_per_s);
    table.add_row({std::to_string(lanes), Table::fmt(sw_per_s),
                   Table::fmt(speedup) + "x"});
  }
  reg.gauge("bench.fabric.speedup_8v1").set(speedup_8v1);
  reg.gauge("bench.fabric.speedup_best").set(best_speedup);
  table.print(std::cout);

  // ---- cold vs warm through the per-switch artifact cache ---------------
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "fmnet_bench_fabric";
  fs::remove_all(dir);
  double cold_s = 0.0;
  double warm_s = 0.0;
  std::string cold_out;
  {
    core::Engine cold{core::ArtifactStore(dir.string())};
    fmnet::Stopwatch clock;
    cold_out = results_to_string(cold.run_fabric(s));
    cold_s = clock.elapsed_seconds();
  }
  const auto gt_hits_before =
      reg.counter("engine.artifact.hit.fabric-gt").value();
  {
    core::Engine warm{core::ArtifactStore(dir.string())};
    fmnet::Stopwatch clock;
    const std::string warm_out = results_to_string(warm.run_fabric(s));
    warm_s = clock.elapsed_seconds();
    if (warm_out != cold_out) {
      std::fprintf(stderr, "FAIL: warm fabric run diverges from cold\n");
      return 1;
    }
  }
  const auto gt_hits =
      reg.counter("engine.artifact.hit.fabric-gt").value() - gt_hits_before;
  fs::remove_all(dir);
  if (gt_hits != s.fabric.num_switches()) {
    std::fprintf(stderr,
                 "FAIL: warm run hit %lld/%lld per-switch ground-truth "
                 "artifacts\n",
                 static_cast<long long>(gt_hits),
                 static_cast<long long>(s.fabric.num_switches()));
    return 1;
  }
  reg.gauge("bench.fabric.cold_s").set(cold_s);
  reg.gauge("bench.fabric.warm_s").set(warm_s);
  reg.gauge("bench.fabric.warm_speedup").set(cold_s / warm_s);
  std::printf("\ncold end-to-end: %.2f s, warm: %.2f s (%.2fx; all %lld "
              "switch ground truths served from cache)\n",
              cold_s, warm_s, cold_s / warm_s,
              static_cast<long long>(gt_hits));
  std::printf("shape check — per-switch tables bit-identical at every lane "
              "count: PASS\n");
  return 0;
}
