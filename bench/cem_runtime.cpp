// Reproduces the §4 runtime claim: "The average time for CEM to correct a
// 50 ms transformer output is 1.47 s, a significant improvement compared to
// FM alone which did not terminate."
//
// Two parts:
//
//  1. Engine comparison on the campaign test split — the specialised exact
//     repair vs the smtlite branch-and-bound that mirrors the paper's Z3
//     usage, cold and with the serving-path accelerators.
//
//  2. The overlapping-window serving workload: a window of one coarse
//     interval advanced by half an interval per step, repaired with the
//     smtlite engine under four configurations — cold, warm-started from
//     the previous window's solution (incremental solving), a seed-varied
//     portfolio, and the content-addressed repair cache. All four must
//     produce byte-identical repairs (the bench exits non-zero otherwise —
//     CI's cache-correctness check), and the per-window medians feed the
//     BENCH_cem.json perf gate:
//       bench.cem.{cold,warm,portfolio,cache}.win_per_s
//       bench.cem.warm_speedup / bench.cem.cache_speedup
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "impute/cem.h"
#include "impute/linear_interp.h"
#include "obs/metrics.h"
#include "smt/solve_cache.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace fmnet;

namespace {

// One overlapping window of the serving workload.
struct Window {
  std::vector<double> imputed;
  std::vector<std::int64_t> sample_at;  // -1 = not sampled
  std::int64_t m_max = 0;
  std::int64_t m_out = 0;
  bool series_start = false;  // first window of an example (no overlap)
};

double median_ms(std::vector<double> ms) {
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

}  // namespace

int main() {
  bench::ScopedMetricsDump metrics_dump;
  bench::print_header("CEM correction runtime per 50 ms interval");

  const core::Scenario s = bench::default_scenario(42);
  core::Engine eng;
  const core::Campaign campaign = eng.campaign(s.campaign);
  const core::PreparedData data = eng.prepare(s, campaign);
  const std::int64_t factor = data.dataset_config.factor;

  // A deliberately-inconsistent input: the naive baseline, which violates
  // all three constraints, so CEM has real work to do.
  impute::LinearInterpImputer base;

  // ---- Part 1: engine comparison (whole test-split windows) ----
  const std::size_t max_windows = fast_mode() ? 20 : 100;
  Table table({"engine", "windows (50ms)", "total (s)", "mean per 50ms (ms)",
               "objective (pkts moved)"});

  struct EngineRow {
    const char* name;
    impute::CemConfig cfg;
  };
  impute::CemConfig fast_cfg;
  fast_cfg.engine = impute::CemEngine::kFastRepair;
  impute::CemConfig smt_cold_cfg;
  smt_cold_cfg.engine = impute::CemEngine::kSmtBranchAndBound;
  smt_cold_cfg.use_repair_cache = false;
  smt_cold_cfg.warm_start = false;
  impute::CemConfig smt_serving_cfg;
  smt_serving_cfg.engine = impute::CemEngine::kSmtBranchAndBound;
  for (const EngineRow& row :
       {EngineRow{"fast exact repair", fast_cfg},
        EngineRow{"smtlite branch&bound (cold)", smt_cold_cfg},
        EngineRow{"smtlite + warm/cache (serving)", smt_serving_cfg}}) {
    const impute::ConstraintEnforcementModule cem(row.cfg);
    double total_seconds = 0.0;
    std::int64_t total_objective = 0;
    std::size_t windows = 0;
    for (const auto& ex : data.split.test) {
      if (windows >= max_windows) break;
      const auto imputed = base.impute(ex);
      const auto c =
          impute::to_packet_constraints(ex.constraints, ex.qlen_scale);
      const auto r = cem.correct(imputed, c);
      total_seconds += r.seconds;
      total_objective += r.objective;
      windows += ex.window / factor;
    }
    table.add_row({row.name, std::to_string(windows),
                   Table::fmt(total_seconds, 3),
                   Table::fmt(1e3 * total_seconds /
                                  static_cast<double>(windows),
                              4),
                   std::to_string(total_objective)});
  }
  table.print(std::cout);

  // ---- Part 2: overlapping-window serving workload ----
  // Slide a one-interval window by half an interval per repair. Each
  // window spans (up to) two coarse intervals: C1 takes the wider of the
  // two reported maxima (and any sampled value, in case a stale report
  // undercuts a sample), C3 the sum of the spanned port budgets — the
  // admissible relaxation a deployment would use for a window that
  // straddles two telemetry intervals.
  const std::int64_t stride = factor / 2;
  const std::size_t target_windows = fast_mode() ? 48 : 160;
  std::vector<Window> workload;
  for (const auto& ex : data.split.test) {
    if (workload.size() >= target_windows) break;
    const auto imputed = base.impute(ex);
    const auto c =
        impute::to_packet_constraints(ex.constraints, ex.qlen_scale);
    const auto t_len = static_cast<std::int64_t>(imputed.size());
    std::vector<std::int64_t> sample_at(static_cast<std::size_t>(t_len),
                                        -1);
    for (std::size_t k = 0; k < c.sample_idx.size(); ++k) {
      sample_at[static_cast<std::size_t>(c.sample_idx[k])] =
          c.sample_val[k];
    }
    for (std::int64_t begin = 0; begin + factor <= t_len;
         begin += stride) {
      if (workload.size() >= target_windows) break;
      Window w;
      w.series_start = begin == 0;
      w.imputed.assign(imputed.begin() + begin,
                       imputed.begin() + begin + factor);
      w.sample_at.assign(sample_at.begin() + begin,
                         sample_at.begin() + begin + factor);
      const std::int64_t i1 = begin / factor;
      const std::int64_t i2 = (begin + factor - 1) / factor;
      for (std::int64_t i = i1; i <= i2; ++i) {
        w.m_max = std::max(w.m_max,
                           c.window_max[static_cast<std::size_t>(i)]);
        w.m_out += c.port_sent[static_cast<std::size_t>(i)];
      }
      for (std::int64_t t = 0; t < factor; ++t) {
        const std::int64_t v = w.sample_at[static_cast<std::size_t>(t)];
        if (v > w.m_max) w.m_max = v;
      }
      workload.push_back(std::move(w));
    }
  }

  impute::CemConfig cold_cfg = smt_cold_cfg;
  impute::CemConfig warm_cfg = smt_cold_cfg;
  warm_cfg.warm_start = true;
  impute::CemConfig portfolio_cfg = warm_cfg;
  portfolio_cfg.portfolio = 4;
  impute::CemConfig cache_cfg = smt_cold_cfg;
  cache_cfg.use_repair_cache = true;

  const int reps = 3;
  const std::size_t n = workload.size();
  // Per-config best-of-reps median and one reference repair per window
  // for the byte-identity check.
  struct ConfigResult {
    const char* name = "";
    double median = 0.0;
    std::vector<std::vector<double>> repaired;
  };
  ConfigResult cold{"cold", 0.0, {}}, warm{"warm", 0.0, {}},
      portfolio{"portfolio", 0.0, {}}, cache{"cache", 0.0, {}};

  auto run_cold_like = [&](const impute::CemConfig& cfg,
                           ConfigResult& out) {
    const impute::ConstraintEnforcementModule cem(cfg);
    for (int rep = 0; rep < reps; ++rep) {
      std::vector<double> ms;
      ms.reserve(n);
      std::vector<std::vector<double>> repaired(n);
      for (std::size_t i = 0; i < n; ++i) {
        const Window& w = workload[i];
        fmnet::Stopwatch clock;
        auto r = cem.correct_window(w.imputed, w.m_max, w.m_out,
                                    w.sample_at);
        ms.push_back(clock.elapsed_ms());
        repaired[i] = std::move(r.corrected);
      }
      const double med = median_ms(std::move(ms));
      if (rep == 0 || med < out.median) out.median = med;
      out.repaired = std::move(repaired);
    }
  };

  auto run_streaming = [&](const impute::CemConfig& cfg,
                           ConfigResult& out) {
    for (int rep = 0; rep < reps; ++rep) {
      impute::StreamingCemRepair streaming(cfg, stride);
      std::vector<double> ms;
      ms.reserve(n);
      std::vector<std::vector<double>> repaired(n);
      for (std::size_t i = 0; i < n; ++i) {
        const Window& w = workload[i];
        if (w.series_start) streaming.reset();
        fmnet::Stopwatch clock;
        auto r = streaming.repair(w.imputed, w.m_max, w.m_out, w.sample_at);
        ms.push_back(clock.elapsed_ms());
        repaired[i] = std::move(r.corrected);
      }
      const double med = median_ms(std::move(ms));
      if (rep == 0 || med < out.median) out.median = med;
      out.repaired = std::move(repaired);
    }
  };

  run_cold_like(cold_cfg, cold);
  run_streaming(warm_cfg, warm);
  run_streaming(portfolio_cfg, portfolio);
  // Cache: prime once (miss path), then measure the hit path.
  smt::SolveCache::global().clear();
  {
    const impute::ConstraintEnforcementModule cem(cache_cfg);
    for (const Window& w : workload) {
      cem.correct_window(w.imputed, w.m_max, w.m_out, w.sample_at);
    }
  }
  run_cold_like(cache_cfg, cache);

  // Byte-identity across every configuration (the cache-correctness
  // assertion CI relies on): warm, portfolio and cached repairs must equal
  // the cold repair exactly.
  for (const ConfigResult* cfg : {&warm, &portfolio, &cache}) {
    for (std::size_t i = 0; i < n; ++i) {
      if (cfg->repaired[i] != cold.repaired[i]) {
        std::fprintf(stderr,
                     "FAIL: %s repair of window %zu differs from cold\n",
                     cfg->name, i);
        return 1;
      }
    }
  }
  std::printf("\n%zu overlapping windows: warm/portfolio/cache repairs "
              "byte-identical to cold\n",
              n);

  auto& reg = obs::Registry::global();
  Table t2({"config", "median ms/window", "windows/s", "speedup vs cold"});
  for (const ConfigResult* cfg : {&cold, &warm, &portfolio, &cache}) {
    const double wps = 1e3 / cfg->median;
    const double speedup = cold.median / cfg->median;
    std::string gauge("bench.cem.");
    gauge += cfg->name;
    gauge += ".win_per_s";
    reg.gauge(gauge).set(wps);
    reg.gauge(gauge).set_max(wps);
    t2.add_row({cfg->name, Table::fmt(cfg->median, 4), Table::fmt(wps, 1),
                Table::fmt(speedup, 2)});
  }
  const double warm_speedup = cold.median / warm.median;
  const double cache_speedup = cold.median / cache.median;
  reg.gauge("bench.cem.warm_speedup").set(warm_speedup);
  reg.gauge("bench.cem.warm_speedup").set_max(warm_speedup);
  reg.gauge("bench.cem.cache_speedup").set(cache_speedup);
  reg.gauge("bench.cem.cache_speedup").set_max(cache_speedup);
  t2.print(std::cout);

  std::printf(
      "\npaper context: Z3-based CEM took 1.47 s per 50 ms window; FM-alone "
      "never terminated. Both engines here enforce the identical optimum "
      "(cross-checked in tests); the specialised engine shows the cost is "
      "in the solver generality, not the constraint system — and the "
      "warm-start/cache path shows the solver cost amortises across "
      "overlapping windows and recurring violation patterns.\n");
  return 0;
}
