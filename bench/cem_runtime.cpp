// Reproduces the §4 runtime claim: "The average time for CEM to correct a
// 50 ms transformer output is 1.47 s, a significant improvement compared to
// FM alone which did not terminate."
//
// Measures both CEM engines (the specialised exact repair and the smtlite
// branch-and-bound that mirrors the paper's Z3 usage) across many windows
// of a real campaign, and sweeps the interval length.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "impute/cem.h"
#include "impute/linear_interp.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace fmnet;

int main() {
  bench::ScopedMetricsDump metrics_dump;
  bench::print_header("CEM correction runtime per 50 ms interval");

  const core::Scenario s = bench::default_scenario(42);
  core::Engine eng;
  const core::Campaign campaign = eng.campaign(s.campaign);
  const core::PreparedData data = eng.prepare(s, campaign);

  // A deliberately-inconsistent input: the naive baseline, which violates
  // all three constraints, so CEM has real work to do.
  impute::LinearInterpImputer base;

  const std::size_t max_windows = fast_mode() ? 20 : 100;
  Table table({"engine", "windows (50ms)", "total (s)", "mean per 50ms (ms)",
               "objective (pkts moved)"});

  for (const auto engine : {impute::CemEngine::kFastRepair,
                            impute::CemEngine::kSmtBranchAndBound}) {
    impute::CemConfig cfg;
    cfg.engine = engine;
    impute::ConstraintEnforcementModule cem(cfg);
    double total_seconds = 0.0;
    std::int64_t total_objective = 0;
    std::size_t windows = 0;
    for (const auto& ex : data.split.test) {
      if (windows >= max_windows) break;
      const auto imputed = base.impute(ex);
      const auto c =
          impute::to_packet_constraints(ex.constraints, ex.qlen_scale);
      const auto r = cem.correct(imputed, c);
      total_seconds += r.seconds;
      total_objective += r.objective;
      windows += ex.window / data.dataset_config.factor;
    }
    table.add_row({engine == impute::CemEngine::kFastRepair
                       ? "fast exact repair"
                       : "smtlite branch&bound",
                   std::to_string(windows), Table::fmt(total_seconds, 3),
                   Table::fmt(1e3 * total_seconds /
                                  static_cast<double>(windows),
                              4),
                   std::to_string(total_objective)});
  }
  table.print(std::cout);
  std::printf(
      "\npaper context: Z3-based CEM took 1.47 s per 50 ms window; FM-alone "
      "never terminated. Both engines here enforce the identical optimum "
      "(cross-checked in tests); the specialised engine shows the cost is "
      "in the solver generality, not the constraint system.\n");
  return 0;
}
