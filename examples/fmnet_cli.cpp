// fmnet_cli — command-line front end to the FMNet pipeline, the way an
// operator would drive it without writing C++:
//
//   fmnet_cli simulate  --seed 42 --ports 8 --ms 4000 --out trace_dir
//   fmnet_cli evaluate  --seed 42 --ports 8 --ms 4000 --epochs 15
//   fmnet_cli impute    --seed 42 --ports 8 --ms 4000 --queue 3 --out q3.csv
//
// simulate: run a campaign and dump ground truth + coarse telemetry CSVs.
// evaluate: train the KAL transformer + CEM and print the Table-1 rows.
// impute:   train, impute one queue end-to-end, write truth vs imputed CSV.
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "impute/knowledge_imputer.h"
#include "impute/transformer_imputer.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "util/csv.h"

#include <iostream>

using namespace fmnet;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::atoll(it->second.c_str());
  }
  std::string get_str(const std::string& key,
                      const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    args.options[key] = argv[i + 1];
  }
  return args;
}

core::CampaignConfig campaign_config(const Args& args) {
  core::CampaignConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  cfg.num_ports = static_cast<std::int32_t>(args.get_int("ports", 4));
  cfg.buffer_size = args.get_int("buffer", 300);
  cfg.slots_per_ms =
      static_cast<std::int32_t>(args.get_int("slots-per-ms", 30));
  cfg.total_ms = args.get_int("ms", 3'000);
  return cfg;
}

std::shared_ptr<impute::TransformerImputer> train_model(
    const core::PreparedData& data, const Args& args) {
  nn::TransformerConfig model;
  model.input_channels = telemetry::kNumInputChannels;
  impute::TrainConfig train;
  train.epochs = static_cast<int>(args.get_int("epochs", 12));
  train.use_kal = args.get_int("kal", 1) != 0;
  train.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  auto imputer =
      std::make_shared<impute::TransformerImputer>(model, train);
  std::printf("training %s for %d epochs on %zu windows...\n",
              imputer->name().c_str(), train.epochs,
              data.split.train.size());
  const auto stats = imputer->train(data.split.train);
  std::printf("loss %.4f -> %.4f\n", stats.epoch_loss.front(),
              stats.epoch_loss.back());
  return imputer;
}

int cmd_simulate(const Args& args) {
  const auto campaign = core::run_campaign(campaign_config(args));
  const auto data = core::prepare_data(campaign, 300, 50);
  const std::string out = args.get_str("out", ".");
  // Ground truth: one column per queue.
  std::vector<std::string> names;
  std::vector<std::vector<double>> cols;
  for (std::size_t q = 0; q < campaign.gt.queue_len.size(); ++q) {
    names.push_back("queue" + std::to_string(q));
    cols.push_back(campaign.gt.queue_len[q].values());
  }
  write_csv(out + "/ground_truth.csv", names, cols);
  // Coarse telemetry of queue 0's port as a sample.
  write_csv(out + "/telemetry_q0.csv",
            {"periodic", "lanz_max", "snmp_sent", "snmp_drop"},
            {data.coarse.periodic_qlen[0].values(),
             data.coarse.max_qlen[0].values(),
             data.coarse.snmp_sent[0].values(),
             data.coarse.snmp_dropped[0].values()});
  std::printf("wrote %s/ground_truth.csv (%zu ms x %zu queues) and "
              "%s/telemetry_q0.csv\n",
              out.c_str(), campaign.gt.num_ms(),
              campaign.gt.queue_len.size(), out.c_str());
  return 0;
}

int cmd_evaluate(const Args& args) {
  const auto campaign = core::run_campaign(campaign_config(args));
  const auto data = core::prepare_data(campaign, 300, 50);
  core::Table1Evaluator evaluator(campaign, data);
  auto model = train_model(data, args);
  impute::KnowledgeAugmentedImputer full(model);
  std::vector<core::Table1Row> rows;
  rows.push_back(evaluator.evaluate(*model));
  rows.push_back(evaluator.evaluate(full));
  core::print_table1(rows, std::cout);
  return 0;
}

int cmd_impute(const Args& args) {
  const auto campaign = core::run_campaign(campaign_config(args));
  const auto data = core::prepare_data(campaign, 300, 50);
  auto model = train_model(data, args);
  impute::KnowledgeAugmentedImputer full(model);

  const auto queue = static_cast<std::int32_t>(args.get_int("queue", 0));
  std::vector<double> truth;
  std::vector<double> imputed;
  for (const auto& ex : data.split.test) {
    if (ex.queue != queue) continue;
    const auto fine = full.impute(ex);
    imputed.insert(imputed.end(), fine.begin(), fine.end());
    for (std::size_t t = 0; t < ex.window; ++t) {
      truth.push_back(campaign.gt.queue_len[queue][ex.start_ms + t]);
    }
  }
  if (truth.empty()) {
    std::fprintf(stderr, "no test windows for queue %d\n", queue);
    return 1;
  }
  const std::string out = args.get_str("out", "imputed.csv");
  write_csv(out, {"truth", "imputed"}, {truth, imputed});
  std::printf("wrote %s (%zu fine-grained points for queue %d)\n",
              out.c_str(), truth.size(), queue);
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: fmnet_cli <simulate|evaluate|impute> [--seed N] [--ports N]\n"
      "                 [--buffer N] [--slots-per-ms N] [--ms N]\n"
      "                 [--epochs N] [--kal 0|1] [--queue N] [--out PATH]\n"
      "                 [--metrics METRICS.json]\n"
      "--metrics writes the run's observability snapshot (stage spans,\n"
      "CEM/SMT counters, thread-pool lane stats) as JSON; equivalent to\n"
      "setting FMNET_METRICS=METRICS.json.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  const std::string metrics_path = args.get_str("metrics", "");
  if (!metrics_path.empty()) obs::set_sink_path(metrics_path);

  int rc = 2;
  if (args.command == "simulate") {
    rc = cmd_simulate(args);
  } else if (args.command == "evaluate") {
    rc = cmd_evaluate(args);
  } else if (args.command == "impute") {
    rc = cmd_impute(args);
  } else {
    usage();
    return args.command.empty() ? 1 : 2;
  }

  if (obs::finalize() && !metrics_path.empty()) {
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }
  return rc;
}
