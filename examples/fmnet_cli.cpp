// fmnet_cli — command-line front end to the FMNet pipeline, the way an
// operator would drive it without writing C++:
//
//   fmnet_cli run examples/scenarios/table1.scn
//   fmnet_cli run smoke.scn --train.epochs 3 --artifact-dir cache/
//   fmnet_cli simulate --seed 42 --ports 8 --ms 4000 --out trace_dir
//   fmnet_cli evaluate --seed 42 --ms 4000 --methods transformer+kal+cem
//   fmnet_cli impute   --seed 42 --ms 4000 --queue 3 --out q3.csv
//   fmnet_cli sweep examples/scenarios/robustness.scn --severities 0,0.5,1
//   fmnet_cli serve examples/scenarios/serve.scn
//
// run:      execute a scenario file end-to-end and print its Table-1 rows.
// simulate: run a campaign and dump ground truth + coarse telemetry CSVs.
// evaluate: run a flag-built scenario and print its Table-1 rows.
// impute:   fit the first scenario method, impute one queue, write a
//           truth-vs-imputed CSV.
// sweep:    robustness sweep — rescale the scenario's faults.* config
//           across a severity grid, score every method per severity
//           (core/robustness.h), print the curve table and write the
//           JSON report (default BENCH_robustness.json).
// serve:    long-running imputation server (src/serve): train/restore the
//           scenario's base method, then replay serve.sessions concurrent
//           sessions for serve.ticks ticks under a virtual clock. Stdout
//           (counts, output hash, latency percentiles) is a deterministic
//           pure function of the scenario at any FMNET_THREADS.
//
// Every command accepts the scenario option keys as flags (--campaign.seed
// 7, --train.epochs 3, ...) plus the short aliases below; `run` applies
// them on top of the scenario file. All stages go through the Engine, so
// --artifact-dir (or FMNET_ARTIFACT_DIR) makes re-runs skip simulation and
// training via the content-addressed artifact cache.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <map>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/evaluation.h"
#include "core/robustness.h"
#include "core/scenario.h"
#include "impute/registry.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/serve.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/csv.h"
#include "util/string_util.h"

#include <algorithm>
#include <iostream>

using namespace fmnet;

namespace {

/// Options that belong to the CLI itself rather than the scenario.
struct CliOptions {
  std::string metrics;
  std::string artifact_dir;
  bool artifact_dir_set = false;
  std::string out;
  std::int64_t queue = 0;
  std::vector<double> severities = {0.0, 0.5, 1.0};
  bool help = false;
};

/// Short aliases for the most common scenario keys, so `--seed 7` keeps
/// working alongside the canonical `--campaign.seed 7`.
const std::map<std::string, std::string>& flag_aliases() {
  static const std::map<std::string, std::string> kAliases = {
      {"seed", "campaign.seed"},
      {"ports", "campaign.ports"},
      {"buffer", "campaign.buffer"},
      {"slots-per-ms", "campaign.slots-per-ms"},
      {"ms", "campaign.ms"},
      {"shard-ms", "campaign.shard-ms"},
      {"scheduler", "campaign.scheduler"},
      {"window-ms", "data.window-ms"},
      {"factor", "data.factor"},
      {"epochs", "train.epochs"},
  };
  return kAliases;
}

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: fmnet_cli run <scenario-file> [flags]\n"
      "       fmnet_cli sweep <scenario-file> [flags]\n"
      "       fmnet_cli serve <scenario-file> [flags]\n"
      "       fmnet_cli <simulate|evaluate|impute> [flags]\n"
      "\n"
      "Scenario flags: any scenario option key (--campaign.seed N,\n"
      "--train.epochs N, --methods a,b,c, ...; see DESIGN.md) plus the\n"
      "aliases --seed --ports --buffer --slots-per-ms --ms --shard-ms\n"
      "--scheduler --window-ms --factor --epochs.\n"
      "\n"
      "CLI flags:\n"
      "  --out PATH           output directory (simulate), CSV (impute)\n"
      "                       or JSON report (sweep; default\n"
      "                       BENCH_robustness.json)\n"
      "  --queue N            queue to impute (impute)\n"
      "  --severities LIST    comma list of fault severities to sweep\n"
      "                       (sweep; default 0,0.5,1)\n"
      "  --metrics FILE.json  export the observability snapshot (same as\n"
      "                       FMNET_METRICS=FILE.json)\n"
      "  --artifact-dir DIR   content-addressed artifact cache (same as\n"
      "                       FMNET_ARTIFACT_DIR=DIR); warm re-runs skip\n"
      "                       simulation and training\n"
      "  --verbose            per-epoch training output\n"
      "  --help               this text\n"
      "\n"
      "Known methods:");
  for (const auto& m : impute::Registry::known_methods()) {
    std::fprintf(to, " %s", m.c_str());
  }
  std::fprintf(to, "\n");
}

bool is_scenario_key(const std::string& key) {
  const auto& keys = core::scenario_option_keys();
  return std::find(keys.begin(), keys.end(), key) != keys.end();
}

/// Parses `argv[start..)` into scenario overrides and CLI options.
/// Returns 0 on success; on any unknown flag or bad value prints usage and
/// returns the process exit code.
int parse_flags(int argc, char** argv, int start, core::Scenario& scenario,
                CliOptions& cli) {
  for (int i = start; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::fprintf(stderr, "fmnet_cli: unexpected argument '%s'\n",
                   key.c_str());
      usage(stderr);
      return 2;
    }
    key = key.substr(2);

    // Bare (valueless) flags.
    if (key == "help") {
      cli.help = true;
      continue;
    }
    if (key == "verbose") {
      scenario.train.verbose = true;
      continue;
    }

    if (i + 1 >= argc) {
      std::fprintf(stderr, "fmnet_cli: --%s requires a value\n", key.c_str());
      usage(stderr);
      return 2;
    }
    const std::string value = argv[++i];

    const auto alias = flag_aliases().find(key);
    if (alias != flag_aliases().end()) key = alias->second;
    if (is_scenario_key(key)) {
      try {
        core::apply_scenario_option(scenario, key, value);
      } catch (const CheckError& e) {
        std::fprintf(stderr, "fmnet_cli: %s\n", e.what());
        return 2;
      }
      continue;
    }

    if (key == "metrics") {
      cli.metrics = value;
    } else if (key == "artifact-dir") {
      cli.artifact_dir = value;
      cli.artifact_dir_set = true;
    } else if (key == "out") {
      cli.out = value;
    } else if (key == "queue") {
      cli.queue = std::atoll(value.c_str());
    } else if (key == "severities") {
      std::vector<double> severities;
      for (const auto& part : fmnet::split(value, ',')) {
        char* end = nullptr;
        const double v = std::strtod(part.c_str(), &end);
        if (end == part.c_str() || *end != '\0' || v < 0.0) {
          std::fprintf(stderr,
                       "fmnet_cli: --severities: bad value '%s'\n",
                       part.c_str());
          return 2;
        }
        severities.push_back(v);
      }
      if (severities.empty()) {
        std::fprintf(stderr, "fmnet_cli: --severities: empty list\n");
        return 2;
      }
      cli.severities = std::move(severities);
    } else {
      std::fprintf(stderr, "fmnet_cli: unknown option --%s\n", key.c_str());
      usage(stderr);
      return 2;
    }
  }
  return 0;
}

core::Engine make_engine(const CliOptions& cli) {
  return core::Engine(cli.artifact_dir_set
                          ? core::ArtifactStore(cli.artifact_dir)
                          : core::ArtifactStore::from_env());
}

/// Defaults for the flag-built commands: the small 4-port campaign the CLI
/// has always used, evaluating the paper's headline method with and
/// without CEM.
core::Scenario cli_default_scenario() {
  core::Scenario s;
  s.name = "cli";
  s.campaign.num_ports = 4;
  s.campaign.buffer_size = 300;
  s.campaign.slots_per_ms = 30;
  s.campaign.total_ms = 3'000;
  s.train.epochs = 12;
  s.methods = {"transformer+kal", "transformer+kal+cem"};
  return s;
}

int cmd_run(const core::Scenario& s, const CliOptions& cli) {
  core::Engine engine = make_engine(cli);
  if (s.fabric.enabled()) {
    // Fabric scenario: one Table-1 block per switch, in switch-index
    // order. Still a pure function of the scenario — the CI fabric smoke
    // diffs cold vs warm stdout byte-for-byte.
    const auto results = engine.run_fabric(s);
    for (const auto& r : results) {
      std::cout << "== " << r.name << " ==\n";
      core::print_table1(r.rows, std::cout);
    }
    return 0;
  }
  const auto rows = engine.run(s);
  core::print_table1(rows, std::cout);
  return 0;
}

/// Commands that drive the single-switch pipeline directly reject fabric
/// scenarios instead of silently ignoring the topology.
bool reject_fabric(const core::Scenario& s, const char* command) {
  if (!s.fabric.enabled()) return false;
  std::fprintf(stderr,
               "fmnet_cli: %s does not support fabric scenarios "
               "(fabric.leaves/spines set); use 'run'\n",
               command);
  return true;
}

int cmd_sweep(const core::Scenario& s, const CliOptions& cli) {
  if (reject_fabric(s, "sweep")) return 2;
  core::Engine engine = make_engine(cli);
  const auto curves =
      core::run_robustness_sweep(engine, s, cli.severities);
  // Deterministic curve table on stdout (same property as the Table-1
  // printer: a pure function of scenario + severity grid).
  std::printf("%-24s %10s %14s %14s\n", "method", "severity", "emd(pkts)",
              "mae(pkts)");
  for (const auto& p : curves.points) {
    std::printf("%-24s %10.3f %14.6f %14.6f\n", p.method.c_str(),
                p.severity, p.emd, p.mae);
  }
  const std::string out =
      cli.out.empty() ? "BENCH_robustness.json" : cli.out;
  core::write_robustness_json(curves, out);
  std::fprintf(stderr, "wrote robustness report to %s\n", out.c_str());
  return 0;
}

int cmd_simulate(const core::Scenario& s, const CliOptions& cli) {
  if (reject_fabric(s, "simulate")) return 2;
  core::Engine engine = make_engine(cli);
  const auto campaign = engine.campaign(s.campaign);
  const auto data = engine.prepare(s, campaign);
  const std::string out = cli.out.empty() ? "." : cli.out;
  // Ground truth: one column per queue.
  std::vector<std::string> names;
  std::vector<std::vector<double>> cols;
  for (std::size_t q = 0; q < campaign.gt.queue_len.size(); ++q) {
    names.push_back("queue" + std::to_string(q));
    cols.push_back(campaign.gt.queue_len[q].values());
  }
  write_csv(out + "/ground_truth.csv", names, cols);
  // Coarse telemetry of queue 0's port as a sample.
  write_csv(out + "/telemetry_q0.csv",
            {"periodic", "lanz_max", "snmp_sent", "snmp_drop"},
            {data.coarse.periodic_qlen[0].values(),
             data.coarse.max_qlen[0].values(),
             data.coarse.snmp_sent[0].values(),
             data.coarse.snmp_dropped[0].values()});
  std::printf("wrote %s/ground_truth.csv (%zu ms x %zu queues) and "
              "%s/telemetry_q0.csv\n",
              out.c_str(), campaign.gt.num_ms(),
              campaign.gt.queue_len.size(), out.c_str());
  return 0;
}

int cmd_impute(const core::Scenario& s, const CliOptions& cli) {
  if (reject_fabric(s, "impute")) return 2;
  core::Engine engine = make_engine(cli);
  const auto campaign = engine.campaign(s.campaign);
  const auto data = engine.prepare(s, campaign);
  auto built = engine.fit_method(s, s.methods.front(), data);

  const auto queue = static_cast<std::int32_t>(cli.queue);
  std::vector<double> truth;
  std::vector<double> imputed;
  for (const auto& ex : data.split.test) {
    if (ex.queue != queue) continue;
    const auto fine = built.imputer->impute(ex);
    imputed.insert(imputed.end(), fine.begin(), fine.end());
    for (std::size_t t = 0; t < ex.window; ++t) {
      truth.push_back(campaign.gt.queue_len[queue][ex.start_ms + t]);
    }
  }
  if (truth.empty()) {
    std::fprintf(stderr, "no test windows for queue %d\n", queue);
    return 1;
  }
  const std::string out = cli.out.empty() ? "imputed.csv" : cli.out;
  write_csv(out, {"truth", "imputed"}, {truth, imputed});
  std::printf("wrote %s (%zu fine-grained points for queue %d, method %s)\n",
              out.c_str(), truth.size(), queue,
              built.imputer->name().c_str());
  return 0;
}

/// FNV-1a over a 64-bit word, little-endian byte order.
std::uint64_t fnv64(std::uint64_t h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

int cmd_serve(const core::Scenario& s, const CliOptions& cli) {
  if (reject_fabric(s, "serve")) return 2;
  if (!s.serve.enabled()) {
    std::fprintf(stderr,
                 "fmnet_cli: serve requires serve.sessions > 0 in the "
                 "scenario\n");
    return 2;
  }
  core::Engine engine = make_engine(cli);
  const auto campaign = engine.campaign(s.campaign);
  const auto data = engine.prepare(s, campaign);
  // Serving shares checkpoints with batch evaluation of the same scenario:
  // the base method is trained/restored once; CEM runs as the server's
  // async repair lane rather than as a "+cem" wrapper.
  const std::string base =
      impute::Registry::base_method(s.methods.front());
  auto built = engine.fit_method(s, base, data);

  // Virtual clock: the replay schedule *is* the time axis, so published
  // latencies are tick-quantised and the whole run is bit-reproducible.
  util::VirtualClock clock;
  serve::ServeCore server(s.serve, built.imputer, s.window_ms / s.factor,
                          s.factor, data.dataset_config.qlen_scale,
                          data.dataset_config.count_scale, s.cem, &clock);
  serve::ReplaySource source(data.coarse, s.campaign.queues_per_port,
                             s.serve.sessions);
  std::vector<impute::CoarseIntervalUpdate> updates;
  std::vector<serve::PublishedWindow> published;
  for (std::int64_t t = 0; t < s.serve.ticks; ++t) {
    source.fill(t, updates);
    server.tick(updates, published);
    clock.advance(s.serve.interval_ms * 1e-3);
  }
  server.drain(published);

  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& p : published) {
    h = fnv64(h, static_cast<std::uint64_t>(p.session));
    h = fnv64(h, static_cast<std::uint64_t>(p.tick));
    h = fnv64(h, static_cast<std::uint64_t>(p.kind));
    for (const double v : p.fine) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &v, sizeof(bits));
      h = fnv64(h, bits);
    }
  }

  const serve::ServeStats& st = server.stats();
  std::printf("serve: sessions=%lld ticks=%lld method=%s\n",
              static_cast<long long>(s.serve.sessions),
              static_cast<long long>(s.serve.ticks), base.c_str());
  std::printf("published: raw=%lld repaired=%lld degraded=%lld "
              "batches=%lld\n",
              static_cast<long long>(st.windows_raw),
              static_cast<long long>(st.windows_repaired),
              static_cast<long long>(st.windows_degraded),
              static_cast<long long>(st.batches));
  std::printf("shed: queue=%lld repair=%lld\n",
              static_cast<long long>(st.shed_queue),
              static_cast<long long>(st.shed_repair));
  // Deterministic under the virtual clock: latencies are pure functions of
  // the tick schedule, so the percentiles may join the stdout contract.
  const auto& raw =
      obs::Registry::global().percentiles("serve.latency.raw_ms");
  std::printf("latency.raw_ms: p50=%.3f p99=%.3f max=%.3f\n",
              raw.percentile(50.0), raw.percentile(99.0), raw.max());
  std::printf("output-hash: %016llx\n",
              static_cast<unsigned long long>(h));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string command = argc >= 2 ? argv[1] : "";
  if (command.empty() || command == "--help" || command == "help") {
    usage(command.empty() ? stderr : stdout);
    return command.empty() ? 1 : 0;
  }

  core::Scenario scenario;
  CliOptions cli;
  int flag_start = 2;
  if (command == "run" || command == "sweep" || command == "serve") {
    if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
      std::fprintf(stderr, "fmnet_cli: %s requires a scenario file\n",
                   command.c_str());
      usage(stderr);
      return 2;
    }
    try {
      scenario = core::load_scenario_file(argv[2]);
    } catch (const CheckError& e) {
      std::fprintf(stderr, "fmnet_cli: %s\n", e.what());
      return 2;
    }
    flag_start = 3;
  } else if (command == "simulate" || command == "evaluate" ||
             command == "impute") {
    scenario = cli_default_scenario();
  } else {
    std::fprintf(stderr, "fmnet_cli: unknown command '%s'\n",
                 command.c_str());
    usage(stderr);
    return 2;
  }

  const int parse_rc = parse_flags(argc, argv, flag_start, scenario, cli);
  if (parse_rc != 0) return parse_rc;
  if (cli.help) {
    usage(stdout);
    return 0;
  }
  if (!cli.metrics.empty()) obs::set_sink_path(cli.metrics);

  int rc;
  if (command == "run" || command == "evaluate") {
    rc = cmd_run(scenario, cli);
  } else if (command == "sweep") {
    rc = cmd_sweep(scenario, cli);
  } else if (command == "serve") {
    rc = cmd_serve(scenario, cli);
  } else if (command == "simulate") {
    rc = cmd_simulate(scenario, cli);
  } else {
    rc = cmd_impute(scenario, cli);
  }

  // Stderr, so stdout stays a pure function of the scenario (the CI cache
  // smoke diffs cold vs warm stdout byte-for-byte).
  if (obs::finalize() && !cli.metrics.empty()) {
    std::fprintf(stderr, "wrote metrics to %s\n", cli.metrics.c_str());
  }
  return rc;
}
