// Shared scenario plumbing for the example programs: every example runs the
// same small 4-port campaign (2–3 s instead of the paper's 10 s so they
// finish in about a minute) and drives it through the Engine, so setting
// FMNET_ARTIFACT_DIR makes repeated example runs skip simulation/training.
#pragma once

#include <cstdint>

#include "core/engine.h"
#include "core/scenario.h"

namespace fmnet::examples {

/// A small example-sized scenario. The method list stays the scenario
/// default; examples that evaluate specific methods pass them to
/// Engine::fit_method directly.
inline core::Scenario small_scenario(const char* name, std::uint64_t seed,
                                     std::int64_t total_ms, int epochs) {
  core::Scenario s;
  s.name = name;
  s.campaign.seed = seed;
  s.campaign.num_ports = 4;
  s.campaign.buffer_size = 300;
  s.campaign.slots_per_ms = 30;
  s.campaign.total_ms = total_ms;
  s.train.epochs = epochs;
  return s;
}

}  // namespace fmnet::examples
