// Microburst hunting: find sub-10 ms queue spikes — invisible to 50 ms
// polling — from routinely-collected telemetry (the paper's anomaly-
// detection / root-cause motivation).
//
// Compares microburst recall of the coarse view vs the imputed view
// against ground truth, and prints the hunted incidents.
#include <algorithm>
#include <cstdio>

#include "example_common.h"
#include "obs/export.h"
#include "tasks/bursts.h"

using namespace fmnet;

namespace {
// Microburst = burst shorter than 10 ms.
std::vector<tasks::Burst> microbursts(const std::vector<double>& series,
                                      double threshold) {
  std::vector<tasks::Burst> out;
  for (const auto& b : tasks::detect_bursts(series, threshold)) {
    if (b.duration() < 10) out.push_back(b);
  }
  return out;
}

// Matching at two granularities: exact (overlapping steps) and interval
// (same 50 ms interval — what CEM can guarantee, since the LANZ max forces
// a >= threshold step *somewhere* in the right interval).
std::size_t matched(const std::vector<tasks::Burst>& truth,
                    const std::vector<tasks::Burst>& found,
                    std::size_t tolerance) {
  std::size_t hits = 0;
  for (const auto& t : truth) {
    for (const auto& f : found) {
      const tasks::Burst widened{f.start > tolerance ? f.start - tolerance
                                                     : 0,
                                 f.end + tolerance, f.height};
      if (t.overlaps(widened)) {
        ++hits;
        break;
      }
    }
  }
  return hits;
}
}  // namespace

int main() {
  std::printf("=== Microburst hunting with imputed telemetry ===\n");
  const core::Scenario s = examples::small_scenario(
      "microburst-hunting", /*seed=*/33, /*total_ms=*/3'000, /*epochs=*/15);
  core::Engine engine;
  const core::Campaign campaign = engine.campaign(s.campaign);
  const core::PreparedData data = engine.prepare(s, campaign);
  auto built = engine.fit_method(s, "transformer+kal+cem", data);
  impute::Imputer& imputer = *built.imputer;

  const double threshold =
      0.1 * static_cast<double>(campaign.switch_config.buffer_size);

  std::size_t truth_total = 0;
  std::size_t coarse_hits = 0;
  std::size_t imputed_hits = 0;
  std::size_t imputed_interval_hits = 0;
  std::size_t imputed_false = 0;
  for (const auto& ex : data.split.test) {
    std::vector<double> truth(ex.window);
    std::vector<double> coarse(ex.window);
    for (std::size_t t = 0; t < ex.window; ++t) {
      truth[t] = campaign.gt.queue_len[ex.queue][ex.start_ms + t];
      const std::size_t s = t / static_cast<std::size_t>(
                                    ex.constraints.coarse_factor);
      coarse[t] = static_cast<double>(ex.constraints.sample_val[s]) *
                  ex.qlen_scale;
    }
    const auto imputed = imputer.impute(ex);

    const auto mb_truth = microbursts(truth, threshold);
    const auto mb_coarse = microbursts(coarse, threshold);
    const auto mb_imputed = microbursts(imputed, threshold);
    const std::size_t interval_tol =
        static_cast<std::size_t>(ex.constraints.coarse_factor);
    truth_total += mb_truth.size();
    coarse_hits += matched(mb_truth, mb_coarse, 0);
    imputed_hits += matched(mb_truth, mb_imputed, 0);
    imputed_interval_hits += matched(mb_truth, mb_imputed, interval_tol);
    imputed_false += mb_imputed.size() - matched(mb_imputed, mb_truth, 0);

    for (const auto& b : mb_truth) {
      const bool exact = matched({b}, mb_imputed, 0) > 0;
      const bool interval = matched({b}, mb_imputed, interval_tol) > 0;
      std::printf(
          "  microburst: queue %d at t=%zu ms, %zu ms long, peak %.0f pkts "
          "-> %s\n",
          ex.queue, ex.start_ms + b.start, b.duration(), b.height,
          exact      ? "FOUND (exact ms)"
          : interval ? "FOUND (right interval)"
                     : "missed");
    }
  }
  auto pct = [&](std::size_t hits) {
    return truth_total ? 100.0 * static_cast<double>(hits) /
                             static_cast<double>(truth_total)
                       : 0.0;
  };
  std::printf("\nground-truth microbursts: %zu\n", truth_total);
  std::printf("recall from 50 ms samples alone:        %.0f%%\n",
              pct(coarse_hits));
  std::printf("FMNet recall, exact-ms overlap:         %.0f%%\n",
              pct(imputed_hits));
  std::printf("FMNet recall, correct 50 ms interval:   %.0f%%  "
              "(guaranteed by CEM when the peak exceeds the threshold)\n",
              pct(imputed_interval_hits));
  std::printf("spurious imputed microbursts (exact):   %zu\n",
              imputed_false);
  obs::finalize();
  return 0;
}
