// Buffer provisioning with imputed telemetry (the paper's §2.1 motivating
// scenario): "longitudinal analyses of fine-grained queue length
// measurements will give the operator an idea of the common burst sizes and
// frequencies to inform the trade-off between accommodating bursts and
// reducing switch cost".
//
// This example compares three views of the same network:
//   * coarse view  — what 50 ms periodic samples alone suggest,
//   * imputed view — FMNet's fine-grained reconstruction,
//   * true view    — simulator ground truth (what a perfect monitor sees),
// and derives a per-queue buffer recommendation (p99.9 of queue depth plus
// headroom) from each. The coarse view dramatically under-provisions; the
// imputed view tracks the truth.
#include <algorithm>
#include <cstdio>

#include "example_common.h"
#include "obs/export.h"
#include "util/stats.h"

using namespace fmnet;

namespace {
double recommend_buffer(const std::vector<double>& qlen_series) {
  if (qlen_series.empty()) return 0.0;
  // p99.9 depth with 25% headroom, the kind of rule of thumb an operator
  // would apply to longitudinal data.
  return 1.25 * percentile(qlen_series, 99.9);
}
}  // namespace

int main() {
  std::printf("=== Buffer provisioning from imputed telemetry ===\n");
  const core::Scenario s = examples::small_scenario(
      "buffer-provisioning", /*seed=*/21, /*total_ms=*/3'000, /*epochs=*/10);
  core::Engine engine;
  const core::Campaign campaign = engine.campaign(s.campaign);
  const core::PreparedData data = engine.prepare(s, campaign);
  auto built = engine.fit_method(s, "transformer+kal+cem", data);
  impute::Imputer& imputer = *built.imputer;

  std::printf("\n%-8s %14s %14s %14s\n", "queue", "coarse-only",
              "FMNet imputed", "ground truth");
  double coarse_total = 0.0;
  double imputed_total = 0.0;
  double truth_total = 0.0;
  const std::size_t queues = campaign.gt.queue_len.size();
  std::vector<std::vector<double>> imputed_series(queues);
  std::vector<std::vector<double>> coarse_series(queues);
  std::vector<std::vector<double>> truth_series(queues);
  for (const auto& ex : data.split.test) {
    const auto q = static_cast<std::size_t>(ex.queue);
    const auto fine = imputer.impute(ex);
    imputed_series[q].insert(imputed_series[q].end(), fine.begin(),
                             fine.end());
    for (std::size_t t = 0; t < ex.window; ++t) {
      truth_series[q].push_back(
          campaign.gt.queue_len[ex.queue][ex.start_ms + t]);
    }
    // Coarse view: hold the periodic sample across each interval.
    for (std::size_t s = 0; s < ex.constraints.sample_idx.size(); ++s) {
      const double v = static_cast<double>(ex.constraints.sample_val[s]) *
                       ex.qlen_scale;
      for (std::int64_t k = 0; k < ex.constraints.coarse_factor; ++k) {
        coarse_series[q].push_back(v);
      }
    }
  }
  for (std::size_t q = 0; q < queues; ++q) {
    const double c = recommend_buffer(coarse_series[q]);
    const double i = recommend_buffer(imputed_series[q]);
    const double t = recommend_buffer(truth_series[q]);
    coarse_total += c;
    imputed_total += i;
    truth_total += t;
    std::printf("%-8zu %11.0f pkt %11.0f pkt %11.0f pkt\n", q, c, i, t);
  }
  std::printf("%-8s %11.0f pkt %11.0f pkt %11.0f pkt\n", "TOTAL",
              coarse_total, imputed_total, truth_total);

  const double coarse_gap = truth_total > 0
                                ? 100.0 * (truth_total - coarse_total) /
                                      truth_total
                                : 0.0;
  const double imputed_gap = truth_total > 0
                                 ? 100.0 * std::abs(truth_total -
                                                    imputed_total) /
                                       truth_total
                                 : 0.0;
  std::printf(
      "\ncoarse-only provisioning misses %.0f%% of the needed buffer;\n"
      "the imputed view is within %.0f%% of the ground-truth "
      "recommendation.\n",
      coarse_gap, imputed_gap);
  obs::finalize();
  return 0;
}
