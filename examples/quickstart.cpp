// Quickstart: the whole FMNet pipeline in ~60 lines.
//
//   1. simulate a datacenter switch under websearch+incast traffic,
//   2. sample the coarse telemetry an operator actually has,
//   3. train a knowledge-augmented transformer (EMD loss + KAL),
//   4. impute fine-grained queue lengths and enforce the constraints (CEM),
//   5. check the result against the measurements.
//
// Build & run:  ./examples/quickstart   (seeded; finishes in ~a minute)
#include <cstdio>
#include <memory>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "impute/knowledge_imputer.h"
#include "impute/transformer_imputer.h"
#include "nn/kal.h"
#include "obs/export.h"

using namespace fmnet;

int main() {
  // 1. Simulate: 4-port output-queued switch, shared buffer with dynamic
  //    thresholds, 2 s of websearch+incast traffic.
  core::CampaignConfig sim;
  sim.num_ports = 4;
  sim.buffer_size = 300;
  sim.slots_per_ms = 30;
  sim.total_ms = 2'000;
  sim.seed = 7;
  const core::Campaign campaign = core::run_campaign(sim);
  std::printf("simulated %zu ms over %zu queues\n", campaign.gt.num_ms(),
              campaign.gt.queue_len.size());

  // 2. Sample telemetry: 50 ms periodic samples, LANZ maxima, SNMP
  //    counters; window into 300 ms training examples.
  const core::PreparedData data = core::prepare_data(campaign,
                                                     /*window_ms=*/300,
                                                     /*factor=*/50);
  std::printf("prepared %zu train / %zu test windows (50 ms -> 1 ms)\n",
              data.split.train.size(), data.split.test.size());

  // 3. Train the transformer with the Knowledge-Augmented Loss.
  nn::TransformerConfig model;
  model.input_channels = telemetry::kNumInputChannels;
  impute::TrainConfig train;
  train.epochs = 10;
  train.use_kal = true;
  auto transformer =
      std::make_shared<impute::TransformerImputer>(model, train);
  const auto stats = transformer->train(data.split.train);
  std::printf("trained: loss %.4f -> %.4f\n", stats.epoch_loss.front(),
              stats.epoch_loss.back());

  // 4. Wrap with the Constraint Enforcement Module.
  impute::KnowledgeAugmentedImputer imputer(transformer);

  // 5. Impute one unseen window and verify consistency.
  const auto& example = data.split.test.front();
  const std::vector<double> fine = imputer.impute(example);
  std::vector<double> normalised(fine.size());
  for (std::size_t t = 0; t < fine.size(); ++t) {
    normalised[t] = fine[t] / example.qlen_scale;
  }
  const auto v = nn::evaluate_constraints(normalised, example.constraints);
  std::printf(
      "imputed %zu fine-grained points for queue %d; constraint "
      "violations: max %.2g, periodic %.2g, sent %.2g -> %s\n",
      fine.size(), example.queue, v.max_violation, v.periodic_violation,
      v.sent_violation, v.satisfied(1e-5) ? "CONSISTENT" : "violated");

  // 6. With FMNET_METRICS=<path> set, export the run's observability
  //    snapshot (stage spans, CEM/SMT counters, pool lane stats) as JSON.
  obs::finalize();
  return 0;
}
