// Quickstart: the whole FMNet pipeline in ~60 lines.
//
//   1. simulate a datacenter switch under websearch+incast traffic,
//   2. sample the coarse telemetry an operator actually has,
//   3. train a knowledge-augmented transformer (EMD loss + KAL),
//   4. impute fine-grained queue lengths and enforce the constraints (CEM),
//   5. check the result against the measurements.
//
// Build & run:  ./examples/quickstart   (seeded; finishes in ~a minute)
//
// Every stage goes through the Engine, so with FMNET_ARTIFACT_DIR set a
// second run loads the campaign and the trained weights from the artifact
// cache instead of recomputing them.
#include <cstdio>

#include "example_common.h"
#include "nn/kal.h"
#include "obs/export.h"

using namespace fmnet;

int main() {
  // 1. Simulate: 4-port output-queued switch, shared buffer with dynamic
  //    thresholds, 2 s of websearch+incast traffic.
  core::Scenario s = examples::small_scenario("quickstart", /*seed=*/7,
                                              /*total_ms=*/2'000,
                                              /*epochs=*/10);
  core::Engine engine;
  const core::Campaign campaign = engine.campaign(s.campaign);
  std::printf("simulated %zu ms over %zu queues\n", campaign.gt.num_ms(),
              campaign.gt.queue_len.size());

  // 2. Sample telemetry: 50 ms periodic samples, LANZ maxima, SNMP
  //    counters; window into 300 ms training examples.
  const core::PreparedData data = engine.prepare(s, campaign);
  std::printf("prepared %zu train / %zu test windows (50 ms -> 1 ms)\n",
              data.split.train.size(), data.split.test.size());

  // 3+4. Transformer with the Knowledge-Augmented Loss, wrapped in the
  //      Constraint Enforcement Module — the paper's full system, by its
  //      registry name.
  auto built = engine.fit_method(s, "transformer+kal+cem", data);
  std::printf("fitted %s on %zu windows\n", built.imputer->name().c_str(),
              data.split.train.size());

  // 5. Impute one unseen window and verify consistency.
  const auto& example = data.split.test.front();
  const std::vector<double> fine = built.imputer->impute(example);
  std::vector<double> normalised(fine.size());
  for (std::size_t t = 0; t < fine.size(); ++t) {
    normalised[t] = fine[t] / example.qlen_scale;
  }
  const auto v = nn::evaluate_constraints(normalised, example.constraints);
  std::printf(
      "imputed %zu fine-grained points for queue %d; constraint "
      "violations: max %.2g, periodic %.2g, sent %.2g -> %s\n",
      fine.size(), example.queue, v.max_violation, v.periodic_violation,
      v.sent_violation, v.satisfied(1e-5) ? "CONSISTENT" : "violated");

  // 6. With FMNET_METRICS=<path> set, export the run's observability
  //    snapshot (stage spans, artifact hit/miss counters, pool lane
  //    stats) as JSON.
  obs::finalize();
  return 0;
}
