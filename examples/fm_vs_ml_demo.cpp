// The paper's thesis in one program: FM alone is sound but unscalable; ML
// alone is scalable but inconsistent; the hybrid gets both.
//
//   Act 1 — FM-alone (per-slot switch model, smtlite) imputes a toy
//           scenario exactly... and times out a few horizons later.
//   Act 2 — The ML imputer handles a full campaign instantly but violates
//           the measurements.
//   Act 3 — CEM makes the ML output consistent at negligible cost.
#include <cstdio>

#include "example_common.h"
#include "impute/cem.h"
#include "impute/fm_model.h"
#include "nn/kal.h"
#include "obs/export.h"
#include "util/rng.h"

using namespace fmnet;

int main() {
  std::printf("=== Act 1: Formal Methods alone ===\n");
  impute::FmSwitchModelConfig fm_cfg;
  fm_cfg.num_queues = 2;
  fm_cfg.buffer_size = 12;
  fm_cfg.max_ingress_per_slot = 3;
  fm_cfg.slots_per_interval = 6;
  impute::FmSwitchModel fm(fm_cfg);

  fmnet::Rng rng(5);
  for (const std::int64_t horizon : {12LL, 24LL, 48LL}) {
    std::vector<std::vector<std::int64_t>> arrivals(
        2, std::vector<std::int64_t>(static_cast<std::size_t>(horizon)));
    for (auto& qa : arrivals) {
      for (auto& a : qa) a = rng.uniform_int(0, 3);
    }
    impute::FmSwitchModelConfig cfg = fm_cfg;
    cfg.slots_per_interval = horizon / 2;
    impute::FmSwitchModel model(cfg);
    const auto m = model.measure(arrivals);
    smt::Budget budget;
    budget.max_seconds = 10.0;
    const auto r = model.impute(m, budget);
    std::printf(
        "  horizon %3lld slots: %-8s (%.2fs, %lld decisions)\n",
        static_cast<long long>(horizon),
        r.status == smt::Status::kSat ? "SOLVED"
        : r.status == smt::Status::kUnknown ? "TIMEOUT" : "UNSAT?",
        r.seconds, static_cast<long long>(r.decisions));
  }
  std::printf("  -> sound, but the search space explodes with the "
              "horizon (paper §2.3: Z3 ran 24h without finishing).\n\n");

  std::printf("=== Act 2: ML alone ===\n");
  const core::Scenario s = examples::small_scenario(
      "fm-vs-ml", /*seed=*/11, /*total_ms=*/2'000, /*epochs=*/8);
  core::Engine engine;
  const core::Campaign campaign = engine.campaign(s.campaign);
  const core::PreparedData data = engine.prepare(s, campaign);
  // Plain transformer, EMD loss, no KAL and no CEM: ML with no formal
  // methods anywhere.
  auto ml = engine.fit_method(s, "transformer", data);

  const auto& ex = data.split.test.front();
  auto raw = ml.imputer->impute(ex);
  std::vector<double> norm(raw.size());
  for (std::size_t t = 0; t < raw.size(); ++t) {
    norm[t] = raw[t] / ex.qlen_scale;
  }
  auto v = nn::evaluate_constraints(norm, ex.constraints);
  std::printf(
      "  transformer imputed a %zu ms window instantly, but violates the "
      "measurements: max %.3f, periodic %.3f, sent %.1f\n",
      raw.size(), v.max_violation, v.periodic_violation, v.sent_violation);
  std::printf("  -> scalable, but nothing guarantees the answer could "
              "have happened.\n\n");

  std::printf("=== Act 3: ML + FM (CEM) ===\n");
  impute::ConstraintEnforcementModule cem;
  const auto c = impute::to_packet_constraints(ex.constraints, ex.qlen_scale);
  const auto corrected = cem.correct(raw, c);
  std::vector<double> cnorm(corrected.corrected.size());
  for (std::size_t t = 0; t < cnorm.size(); ++t) {
    cnorm[t] = corrected.corrected[t] / ex.qlen_scale;
  }
  v = nn::evaluate_constraints(cnorm, ex.constraints);
  std::printf(
      "  CEM corrected the window in %.4fs, moving %lld packets; "
      "violations now: max %.2g, periodic %.2g, sent %.2g\n",
      corrected.seconds, static_cast<long long>(corrected.objective),
      v.max_violation, v.periodic_violation, v.sent_violation);
  std::printf("  -> the hybrid is both scalable and provably consistent "
              "with every measurement.\n");
  obs::finalize();
  return 0;
}
