# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/smt_test[1]_include.cmake")
include("/root/repo/build/tests/switchsim_test[1]_include.cmake")
include("/root/repo/build/tests/traffic_test[1]_include.cmake")
include("/root/repo/build/tests/telemetry_test[1]_include.cmake")
include("/root/repo/build/tests/impute_test[1]_include.cmake")
include("/root/repo/build/tests/tasks_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
