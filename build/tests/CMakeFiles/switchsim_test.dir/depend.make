# Empty dependencies file for switchsim_test.
# This may be replaced when dependencies are built.
