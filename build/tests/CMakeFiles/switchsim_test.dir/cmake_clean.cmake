file(REMOVE_RECURSE
  "CMakeFiles/switchsim_test.dir/switchsim_test.cpp.o"
  "CMakeFiles/switchsim_test.dir/switchsim_test.cpp.o.d"
  "switchsim_test"
  "switchsim_test.pdb"
  "switchsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
