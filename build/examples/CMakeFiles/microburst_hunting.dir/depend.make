# Empty dependencies file for microburst_hunting.
# This may be replaced when dependencies are built.
