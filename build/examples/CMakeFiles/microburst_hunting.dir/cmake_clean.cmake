file(REMOVE_RECURSE
  "CMakeFiles/microburst_hunting.dir/microburst_hunting.cpp.o"
  "CMakeFiles/microburst_hunting.dir/microburst_hunting.cpp.o.d"
  "microburst_hunting"
  "microburst_hunting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microburst_hunting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
