file(REMOVE_RECURSE
  "CMakeFiles/fm_vs_ml_demo.dir/fm_vs_ml_demo.cpp.o"
  "CMakeFiles/fm_vs_ml_demo.dir/fm_vs_ml_demo.cpp.o.d"
  "fm_vs_ml_demo"
  "fm_vs_ml_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_vs_ml_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
