# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fm_vs_ml_demo.
