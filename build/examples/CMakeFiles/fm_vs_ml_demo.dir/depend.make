# Empty dependencies file for fm_vs_ml_demo.
# This may be replaced when dependencies are built.
