file(REMOVE_RECURSE
  "CMakeFiles/fmnet_cli.dir/fmnet_cli.cpp.o"
  "CMakeFiles/fmnet_cli.dir/fmnet_cli.cpp.o.d"
  "fmnet_cli"
  "fmnet_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmnet_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
