# Empty compiler generated dependencies file for fmnet_cli.
# This may be replaced when dependencies are built.
