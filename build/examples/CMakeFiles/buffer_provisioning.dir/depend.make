# Empty dependencies file for buffer_provisioning.
# This may be replaced when dependencies are built.
