file(REMOVE_RECURSE
  "CMakeFiles/buffer_provisioning.dir/buffer_provisioning.cpp.o"
  "CMakeFiles/buffer_provisioning.dir/buffer_provisioning.cpp.o.d"
  "buffer_provisioning"
  "buffer_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
