file(REMOVE_RECURSE
  "CMakeFiles/fmnet_switchsim.dir/recorder.cpp.o"
  "CMakeFiles/fmnet_switchsim.dir/recorder.cpp.o.d"
  "CMakeFiles/fmnet_switchsim.dir/switch.cpp.o"
  "CMakeFiles/fmnet_switchsim.dir/switch.cpp.o.d"
  "libfmnet_switchsim.a"
  "libfmnet_switchsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmnet_switchsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
