file(REMOVE_RECURSE
  "libfmnet_switchsim.a"
)
