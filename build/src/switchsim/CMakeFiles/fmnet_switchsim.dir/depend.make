# Empty dependencies file for fmnet_switchsim.
# This may be replaced when dependencies are built.
