# Empty compiler generated dependencies file for fmnet_tasks.
# This may be replaced when dependencies are built.
