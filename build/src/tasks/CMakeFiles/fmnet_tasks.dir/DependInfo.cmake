
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tasks/bursts.cpp" "src/tasks/CMakeFiles/fmnet_tasks.dir/bursts.cpp.o" "gcc" "src/tasks/CMakeFiles/fmnet_tasks.dir/bursts.cpp.o.d"
  "/root/repo/src/tasks/delay.cpp" "src/tasks/CMakeFiles/fmnet_tasks.dir/delay.cpp.o" "gcc" "src/tasks/CMakeFiles/fmnet_tasks.dir/delay.cpp.o.d"
  "/root/repo/src/tasks/metrics.cpp" "src/tasks/CMakeFiles/fmnet_tasks.dir/metrics.cpp.o" "gcc" "src/tasks/CMakeFiles/fmnet_tasks.dir/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fmnet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fmnet_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fmnet_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
