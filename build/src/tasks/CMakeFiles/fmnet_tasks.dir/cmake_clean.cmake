file(REMOVE_RECURSE
  "CMakeFiles/fmnet_tasks.dir/bursts.cpp.o"
  "CMakeFiles/fmnet_tasks.dir/bursts.cpp.o.d"
  "CMakeFiles/fmnet_tasks.dir/delay.cpp.o"
  "CMakeFiles/fmnet_tasks.dir/delay.cpp.o.d"
  "CMakeFiles/fmnet_tasks.dir/metrics.cpp.o"
  "CMakeFiles/fmnet_tasks.dir/metrics.cpp.o.d"
  "libfmnet_tasks.a"
  "libfmnet_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmnet_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
