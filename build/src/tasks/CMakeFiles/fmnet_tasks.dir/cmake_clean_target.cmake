file(REMOVE_RECURSE
  "libfmnet_tasks.a"
)
