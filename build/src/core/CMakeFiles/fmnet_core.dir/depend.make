# Empty dependencies file for fmnet_core.
# This may be replaced when dependencies are built.
