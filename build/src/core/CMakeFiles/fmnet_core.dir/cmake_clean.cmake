file(REMOVE_RECURSE
  "CMakeFiles/fmnet_core.dir/evaluation.cpp.o"
  "CMakeFiles/fmnet_core.dir/evaluation.cpp.o.d"
  "CMakeFiles/fmnet_core.dir/pipeline.cpp.o"
  "CMakeFiles/fmnet_core.dir/pipeline.cpp.o.d"
  "libfmnet_core.a"
  "libfmnet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmnet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
