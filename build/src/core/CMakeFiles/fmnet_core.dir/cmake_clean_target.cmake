file(REMOVE_RECURSE
  "libfmnet_core.a"
)
