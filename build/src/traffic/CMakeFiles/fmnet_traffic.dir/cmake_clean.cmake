file(REMOVE_RECURSE
  "CMakeFiles/fmnet_traffic.dir/sources.cpp.o"
  "CMakeFiles/fmnet_traffic.dir/sources.cpp.o.d"
  "CMakeFiles/fmnet_traffic.dir/trace.cpp.o"
  "CMakeFiles/fmnet_traffic.dir/trace.cpp.o.d"
  "libfmnet_traffic.a"
  "libfmnet_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmnet_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
