file(REMOVE_RECURSE
  "libfmnet_traffic.a"
)
