# Empty compiler generated dependencies file for fmnet_traffic.
# This may be replaced when dependencies are built.
