file(REMOVE_RECURSE
  "libfmnet_util.a"
)
