# Empty dependencies file for fmnet_util.
# This may be replaced when dependencies are built.
