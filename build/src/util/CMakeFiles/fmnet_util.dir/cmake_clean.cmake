file(REMOVE_RECURSE
  "CMakeFiles/fmnet_util.dir/csv.cpp.o"
  "CMakeFiles/fmnet_util.dir/csv.cpp.o.d"
  "CMakeFiles/fmnet_util.dir/rng.cpp.o"
  "CMakeFiles/fmnet_util.dir/rng.cpp.o.d"
  "CMakeFiles/fmnet_util.dir/stats.cpp.o"
  "CMakeFiles/fmnet_util.dir/stats.cpp.o.d"
  "CMakeFiles/fmnet_util.dir/string_util.cpp.o"
  "CMakeFiles/fmnet_util.dir/string_util.cpp.o.d"
  "CMakeFiles/fmnet_util.dir/table.cpp.o"
  "CMakeFiles/fmnet_util.dir/table.cpp.o.d"
  "CMakeFiles/fmnet_util.dir/time_series.cpp.o"
  "CMakeFiles/fmnet_util.dir/time_series.cpp.o.d"
  "libfmnet_util.a"
  "libfmnet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmnet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
