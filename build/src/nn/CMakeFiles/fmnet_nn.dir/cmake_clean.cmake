file(REMOVE_RECURSE
  "CMakeFiles/fmnet_nn.dir/attention.cpp.o"
  "CMakeFiles/fmnet_nn.dir/attention.cpp.o.d"
  "CMakeFiles/fmnet_nn.dir/gru.cpp.o"
  "CMakeFiles/fmnet_nn.dir/gru.cpp.o.d"
  "CMakeFiles/fmnet_nn.dir/kal.cpp.o"
  "CMakeFiles/fmnet_nn.dir/kal.cpp.o.d"
  "CMakeFiles/fmnet_nn.dir/layers.cpp.o"
  "CMakeFiles/fmnet_nn.dir/layers.cpp.o.d"
  "CMakeFiles/fmnet_nn.dir/losses.cpp.o"
  "CMakeFiles/fmnet_nn.dir/losses.cpp.o.d"
  "CMakeFiles/fmnet_nn.dir/module.cpp.o"
  "CMakeFiles/fmnet_nn.dir/module.cpp.o.d"
  "CMakeFiles/fmnet_nn.dir/optim.cpp.o"
  "CMakeFiles/fmnet_nn.dir/optim.cpp.o.d"
  "CMakeFiles/fmnet_nn.dir/serialize.cpp.o"
  "CMakeFiles/fmnet_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/fmnet_nn.dir/transformer.cpp.o"
  "CMakeFiles/fmnet_nn.dir/transformer.cpp.o.d"
  "libfmnet_nn.a"
  "libfmnet_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmnet_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
