file(REMOVE_RECURSE
  "libfmnet_nn.a"
)
