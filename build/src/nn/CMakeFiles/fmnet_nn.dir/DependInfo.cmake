
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cpp" "src/nn/CMakeFiles/fmnet_nn.dir/attention.cpp.o" "gcc" "src/nn/CMakeFiles/fmnet_nn.dir/attention.cpp.o.d"
  "/root/repo/src/nn/gru.cpp" "src/nn/CMakeFiles/fmnet_nn.dir/gru.cpp.o" "gcc" "src/nn/CMakeFiles/fmnet_nn.dir/gru.cpp.o.d"
  "/root/repo/src/nn/kal.cpp" "src/nn/CMakeFiles/fmnet_nn.dir/kal.cpp.o" "gcc" "src/nn/CMakeFiles/fmnet_nn.dir/kal.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/fmnet_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/fmnet_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/losses.cpp" "src/nn/CMakeFiles/fmnet_nn.dir/losses.cpp.o" "gcc" "src/nn/CMakeFiles/fmnet_nn.dir/losses.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/fmnet_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/fmnet_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/optim.cpp" "src/nn/CMakeFiles/fmnet_nn.dir/optim.cpp.o" "gcc" "src/nn/CMakeFiles/fmnet_nn.dir/optim.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/fmnet_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/fmnet_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/transformer.cpp" "src/nn/CMakeFiles/fmnet_nn.dir/transformer.cpp.o" "gcc" "src/nn/CMakeFiles/fmnet_nn.dir/transformer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/fmnet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fmnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
