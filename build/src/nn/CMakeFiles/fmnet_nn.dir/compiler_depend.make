# Empty compiler generated dependencies file for fmnet_nn.
# This may be replaced when dependencies are built.
