file(REMOVE_RECURSE
  "libfmnet_telemetry.a"
)
