# Empty compiler generated dependencies file for fmnet_telemetry.
# This may be replaced when dependencies are built.
