file(REMOVE_RECURSE
  "CMakeFiles/fmnet_telemetry.dir/dataset.cpp.o"
  "CMakeFiles/fmnet_telemetry.dir/dataset.cpp.o.d"
  "CMakeFiles/fmnet_telemetry.dir/monitors.cpp.o"
  "CMakeFiles/fmnet_telemetry.dir/monitors.cpp.o.d"
  "libfmnet_telemetry.a"
  "libfmnet_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmnet_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
