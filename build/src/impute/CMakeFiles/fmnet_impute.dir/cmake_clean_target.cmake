file(REMOVE_RECURSE
  "libfmnet_impute.a"
)
