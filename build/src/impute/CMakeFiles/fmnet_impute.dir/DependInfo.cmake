
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/impute/alt_models.cpp" "src/impute/CMakeFiles/fmnet_impute.dir/alt_models.cpp.o" "gcc" "src/impute/CMakeFiles/fmnet_impute.dir/alt_models.cpp.o.d"
  "/root/repo/src/impute/cem.cpp" "src/impute/CMakeFiles/fmnet_impute.dir/cem.cpp.o" "gcc" "src/impute/CMakeFiles/fmnet_impute.dir/cem.cpp.o.d"
  "/root/repo/src/impute/fm_model.cpp" "src/impute/CMakeFiles/fmnet_impute.dir/fm_model.cpp.o" "gcc" "src/impute/CMakeFiles/fmnet_impute.dir/fm_model.cpp.o.d"
  "/root/repo/src/impute/iterative_imputer.cpp" "src/impute/CMakeFiles/fmnet_impute.dir/iterative_imputer.cpp.o" "gcc" "src/impute/CMakeFiles/fmnet_impute.dir/iterative_imputer.cpp.o.d"
  "/root/repo/src/impute/knowledge_imputer.cpp" "src/impute/CMakeFiles/fmnet_impute.dir/knowledge_imputer.cpp.o" "gcc" "src/impute/CMakeFiles/fmnet_impute.dir/knowledge_imputer.cpp.o.d"
  "/root/repo/src/impute/linear_interp.cpp" "src/impute/CMakeFiles/fmnet_impute.dir/linear_interp.cpp.o" "gcc" "src/impute/CMakeFiles/fmnet_impute.dir/linear_interp.cpp.o.d"
  "/root/repo/src/impute/rate_imputer.cpp" "src/impute/CMakeFiles/fmnet_impute.dir/rate_imputer.cpp.o" "gcc" "src/impute/CMakeFiles/fmnet_impute.dir/rate_imputer.cpp.o.d"
  "/root/repo/src/impute/streaming.cpp" "src/impute/CMakeFiles/fmnet_impute.dir/streaming.cpp.o" "gcc" "src/impute/CMakeFiles/fmnet_impute.dir/streaming.cpp.o.d"
  "/root/repo/src/impute/transformer_imputer.cpp" "src/impute/CMakeFiles/fmnet_impute.dir/transformer_imputer.cpp.o" "gcc" "src/impute/CMakeFiles/fmnet_impute.dir/transformer_imputer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/telemetry/CMakeFiles/fmnet_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fmnet_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/fmnet_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fmnet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fmnet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/switchsim/CMakeFiles/fmnet_switchsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
