# Empty dependencies file for fmnet_impute.
# This may be replaced when dependencies are built.
