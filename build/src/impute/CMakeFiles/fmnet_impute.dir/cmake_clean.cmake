file(REMOVE_RECURSE
  "CMakeFiles/fmnet_impute.dir/alt_models.cpp.o"
  "CMakeFiles/fmnet_impute.dir/alt_models.cpp.o.d"
  "CMakeFiles/fmnet_impute.dir/cem.cpp.o"
  "CMakeFiles/fmnet_impute.dir/cem.cpp.o.d"
  "CMakeFiles/fmnet_impute.dir/fm_model.cpp.o"
  "CMakeFiles/fmnet_impute.dir/fm_model.cpp.o.d"
  "CMakeFiles/fmnet_impute.dir/iterative_imputer.cpp.o"
  "CMakeFiles/fmnet_impute.dir/iterative_imputer.cpp.o.d"
  "CMakeFiles/fmnet_impute.dir/knowledge_imputer.cpp.o"
  "CMakeFiles/fmnet_impute.dir/knowledge_imputer.cpp.o.d"
  "CMakeFiles/fmnet_impute.dir/linear_interp.cpp.o"
  "CMakeFiles/fmnet_impute.dir/linear_interp.cpp.o.d"
  "CMakeFiles/fmnet_impute.dir/rate_imputer.cpp.o"
  "CMakeFiles/fmnet_impute.dir/rate_imputer.cpp.o.d"
  "CMakeFiles/fmnet_impute.dir/streaming.cpp.o"
  "CMakeFiles/fmnet_impute.dir/streaming.cpp.o.d"
  "CMakeFiles/fmnet_impute.dir/transformer_imputer.cpp.o"
  "CMakeFiles/fmnet_impute.dir/transformer_imputer.cpp.o.d"
  "libfmnet_impute.a"
  "libfmnet_impute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmnet_impute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
