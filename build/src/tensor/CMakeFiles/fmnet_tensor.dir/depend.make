# Empty dependencies file for fmnet_tensor.
# This may be replaced when dependencies are built.
