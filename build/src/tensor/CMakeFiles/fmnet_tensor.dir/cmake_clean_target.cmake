file(REMOVE_RECURSE
  "libfmnet_tensor.a"
)
