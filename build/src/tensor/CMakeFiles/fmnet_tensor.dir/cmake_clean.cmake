file(REMOVE_RECURSE
  "CMakeFiles/fmnet_tensor.dir/matmul.cpp.o"
  "CMakeFiles/fmnet_tensor.dir/matmul.cpp.o.d"
  "CMakeFiles/fmnet_tensor.dir/ops.cpp.o"
  "CMakeFiles/fmnet_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/fmnet_tensor.dir/reduce.cpp.o"
  "CMakeFiles/fmnet_tensor.dir/reduce.cpp.o.d"
  "CMakeFiles/fmnet_tensor.dir/shape_ops.cpp.o"
  "CMakeFiles/fmnet_tensor.dir/shape_ops.cpp.o.d"
  "CMakeFiles/fmnet_tensor.dir/tensor.cpp.o"
  "CMakeFiles/fmnet_tensor.dir/tensor.cpp.o.d"
  "libfmnet_tensor.a"
  "libfmnet_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmnet_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
