file(REMOVE_RECURSE
  "CMakeFiles/fmnet_smt.dir/format.cpp.o"
  "CMakeFiles/fmnet_smt.dir/format.cpp.o.d"
  "CMakeFiles/fmnet_smt.dir/model.cpp.o"
  "CMakeFiles/fmnet_smt.dir/model.cpp.o.d"
  "CMakeFiles/fmnet_smt.dir/solver.cpp.o"
  "CMakeFiles/fmnet_smt.dir/solver.cpp.o.d"
  "libfmnet_smt.a"
  "libfmnet_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmnet_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
