# Empty compiler generated dependencies file for fmnet_smt.
# This may be replaced when dependencies are built.
