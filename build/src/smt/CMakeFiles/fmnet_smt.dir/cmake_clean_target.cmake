file(REMOVE_RECURSE
  "libfmnet_smt.a"
)
