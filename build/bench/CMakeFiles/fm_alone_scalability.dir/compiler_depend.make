# Empty compiler generated dependencies file for fm_alone_scalability.
# This may be replaced when dependencies are built.
