file(REMOVE_RECURSE
  "CMakeFiles/fm_alone_scalability.dir/fm_alone_scalability.cpp.o"
  "CMakeFiles/fm_alone_scalability.dir/fm_alone_scalability.cpp.o.d"
  "fm_alone_scalability"
  "fm_alone_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_alone_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
