# Empty compiler generated dependencies file for streaming_latency.
# This may be replaced when dependencies are built.
