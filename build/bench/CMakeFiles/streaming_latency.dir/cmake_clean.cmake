file(REMOVE_RECURSE
  "CMakeFiles/streaming_latency.dir/streaming_latency.cpp.o"
  "CMakeFiles/streaming_latency.dir/streaming_latency.cpp.o.d"
  "streaming_latency"
  "streaming_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
