file(REMOVE_RECURSE
  "CMakeFiles/fig1_sampling_hides_insight.dir/fig1_sampling_hides_insight.cpp.o"
  "CMakeFiles/fig1_sampling_hides_insight.dir/fig1_sampling_hides_insight.cpp.o.d"
  "fig1_sampling_hides_insight"
  "fig1_sampling_hides_insight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_sampling_hides_insight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
