# Empty compiler generated dependencies file for fig1_sampling_hides_insight.
# This may be replaced when dependencies are built.
