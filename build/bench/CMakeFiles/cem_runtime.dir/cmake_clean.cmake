file(REMOVE_RECURSE
  "CMakeFiles/cem_runtime.dir/cem_runtime.cpp.o"
  "CMakeFiles/cem_runtime.dir/cem_runtime.cpp.o.d"
  "cem_runtime"
  "cem_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cem_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
