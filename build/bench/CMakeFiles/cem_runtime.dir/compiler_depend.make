# Empty compiler generated dependencies file for cem_runtime.
# This may be replaced when dependencies are built.
