file(REMOVE_RECURSE
  "CMakeFiles/fig4_incident_gallery.dir/fig4_incident_gallery.cpp.o"
  "CMakeFiles/fig4_incident_gallery.dir/fig4_incident_gallery.cpp.o.d"
  "fig4_incident_gallery"
  "fig4_incident_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_incident_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
