# Empty compiler generated dependencies file for table1_downstream.
# This may be replaced when dependencies are built.
