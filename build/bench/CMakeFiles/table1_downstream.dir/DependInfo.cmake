
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_downstream.cpp" "bench/CMakeFiles/table1_downstream.dir/table1_downstream.cpp.o" "gcc" "bench/CMakeFiles/table1_downstream.dir/table1_downstream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fmnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/impute/CMakeFiles/fmnet_impute.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/fmnet_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/tasks/CMakeFiles/fmnet_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/fmnet_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/fmnet_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fmnet_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fmnet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/switchsim/CMakeFiles/fmnet_switchsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fmnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
