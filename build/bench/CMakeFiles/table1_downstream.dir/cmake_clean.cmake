file(REMOVE_RECURSE
  "CMakeFiles/table1_downstream.dir/table1_downstream.cpp.o"
  "CMakeFiles/table1_downstream.dir/table1_downstream.cpp.o.d"
  "table1_downstream"
  "table1_downstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_downstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
