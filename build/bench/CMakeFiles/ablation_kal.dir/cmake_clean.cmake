file(REMOVE_RECURSE
  "CMakeFiles/ablation_kal.dir/ablation_kal.cpp.o"
  "CMakeFiles/ablation_kal.dir/ablation_kal.cpp.o.d"
  "ablation_kal"
  "ablation_kal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
