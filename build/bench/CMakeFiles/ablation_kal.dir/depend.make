# Empty dependencies file for ablation_kal.
# This may be replaced when dependencies are built.
