file(REMOVE_RECURSE
  "CMakeFiles/granularity_sweep.dir/granularity_sweep.cpp.o"
  "CMakeFiles/granularity_sweep.dir/granularity_sweep.cpp.o.d"
  "granularity_sweep"
  "granularity_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granularity_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
