# Empty dependencies file for granularity_sweep.
# This may be replaced when dependencies are built.
